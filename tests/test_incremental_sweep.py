"""Incremental sweep: task graph, scheduler, result store, streaming.

The acceptance bar: a re-run of an identical spec prices **zero** cells
(every row replayed from the result store, bit-identically), a changed
spec prices exactly the cells its change invalidated, and the streaming
CSV contains complete rows while the sweep is still running.
"""

import csv
import json
import multiprocessing
import os
import stat
import threading
import time

import pytest

from repro.pipeline import (
    EnumeratorConfig,
    ResultStore,
    SweepSpec,
    TruthStore,
    build_resources,
    config_fingerprint,
    decompose,
    order_units,
    run_sweep,
)
from repro.pipeline import driver as driver_module
from repro.physical import IndexConfig

SPEC = SweepSpec(
    scale="tiny",
    seed=42,
    query_names=("1a", "4a", "6a"),
    estimators=("PostgreSQL", "HyPer"),
)


class TestTaskLayer:
    def test_decompose_covers_grid_in_canonical_order(self):
        units = decompose(SPEC)
        assert [u.query for u in units] == ["1a", "4a", "6a"]
        assert all(len(u.cells) == 4 for u in units)
        orders = [c.order for u in units for c in u.cells]
        assert orders == list(range(12))
        first = units[0].cells
        # config-major, estimator-minor: the sequential loop nesting
        assert [(c.config_index, c.estimator_index) for c in first] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]

    def test_cell_keys_carry_full_identity(self):
        cell = decompose(SPEC)[0].cells[0]
        key = cell.key
        assert (key.dataset, key.scale, key.seed) == ("imdb", "tiny", 42)
        assert key.query == "1a" and key.estimator == "PostgreSQL"
        assert key.datagen_version >= 1 and key.workload_version >= 1

    def test_fingerprint_stable_and_sensitive(self):
        a = EnumeratorConfig("pk", indexes=IndexConfig.PK)
        assert config_fingerprint(a) == config_fingerprint(
            EnumeratorConfig("pk", indexes=IndexConfig.PK)
        )
        for variant in (
            EnumeratorConfig("pk2", indexes=IndexConfig.PK),
            EnumeratorConfig("pk", indexes=IndexConfig.PK_FK),
            EnumeratorConfig("pk", indexes=IndexConfig.PK, allow_nlj=True),
            EnumeratorConfig("pk", indexes=IndexConfig.PK, cost_model="tuned"),
        ):
            assert config_fingerprint(variant) != config_fingerprint(a)

    def test_duplicate_config_names_rejected(self):
        spec = SweepSpec(
            query_names=("1a",),
            configs=(
                EnumeratorConfig("pk", indexes=IndexConfig.PK),
                EnumeratorConfig("pk", indexes=IndexConfig.PK_FK),
            ),
        )
        with pytest.raises(ValueError, match="share a name"):
            decompose(spec)

    def test_order_units_largest_first_stable(self):
        spec = SweepSpec(query_names=("1a", "13a", "6a"))
        ordered = order_units(decompose(spec))
        sizes = [u.n_relations for u in ordered]
        assert sizes == sorted(sizes, reverse=True)
        assert ordered[0].query == "13a"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            decompose(SweepSpec(dataset="mysterydb"))


class TestResultStoreReplay:
    def test_identical_spec_rerun_prices_nothing(self, tmp_path, monkeypatch):
        first = run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
        assert first.priced_cells == 12 and first.cached_cells == 0

        def _no_pricing(*args, **kwargs):
            raise AssertionError("a fully cached sweep must not price cells")

        monkeypatch.setattr(driver_module, "price_cells", _no_pricing)
        monkeypatch.setattr(driver_module, "sweep_query", _no_pricing)
        monkeypatch.setattr(driver_module, "build_resources", _no_pricing)
        second = run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
        assert second.priced_cells == 0 and second.cached_cells == 12
        assert second.rows == first.rows

    def test_changed_config_invalidates_exactly_its_cells(self, tmp_path):
        run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
        changed = SweepSpec(
            scale="tiny",
            seed=42,
            query_names=("1a", "4a", "6a"),
            estimators=("PostgreSQL", "HyPer"),
            configs=(
                EnumeratorConfig("pk", indexes=IndexConfig.PK),
                EnumeratorConfig(
                    "pk+fk", indexes=IndexConfig.PK_FK, allow_nlj=True
                ),
            ),
        )
        priced_pairs = []
        original = driver_module.price_cells

        def recording(resources, query, spec, pairs):
            priced_pairs.append((query.name, tuple(sorted(pairs))))
            return original(resources, query, spec, pairs)

        try:
            driver_module.price_cells = recording
            result = run_sweep(
                changed, truth_root=tmp_path, result_root=tmp_path
            )
        finally:
            driver_module.price_cells = original
        # only the changed config's (query × estimator) cells re-price
        assert result.priced_cells == 6 and result.cached_cells == 6
        assert sorted(priced_pairs) == [
            ("1a", ((1, 0), (1, 1))),
            ("4a", ((1, 0), (1, 1))),
            ("6a", ((1, 0), (1, 1))),
        ]
        assert result.rows == run_sweep(changed).rows

    def test_changed_estimators_reuse_overlap(self, tmp_path):
        run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
        wider = SweepSpec(
            scale="tiny",
            seed=42,
            query_names=("1a", "4a", "6a"),
            estimators=("PostgreSQL", "DBMS A", "HyPer"),
        )
        result = run_sweep(wider, truth_root=tmp_path, result_root=tmp_path)
        assert result.priced_cells == 6  # only the DBMS A cells are new
        assert result.cached_cells == 12
        assert result.rows == run_sweep(wider).rows

    def test_no_resume_reprices_but_still_persists(self, tmp_path):
        run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
        forced = run_sweep(
            SPEC, truth_root=tmp_path, result_root=tmp_path, resume=False
        )
        assert forced.priced_cells == 12 and forced.cached_cells == 0
        warm = run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
        assert warm.priced_cells == 0

    def test_parallel_partial_cache_matches_sequential(self, tmp_path):
        partial = SweepSpec(
            scale="tiny", seed=42, query_names=("4a",),
            estimators=("PostgreSQL", "HyPer"),
        )
        run_sweep(partial, truth_root=tmp_path, result_root=tmp_path)
        pooled = run_sweep(
            SPEC, processes=2, truth_root=tmp_path, result_root=tmp_path
        )
        assert pooled.priced_cells == 8 and pooled.cached_cells == 4
        assert pooled.rows == run_sweep(SPEC).rows

    def test_corrupt_result_file_reprices(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "json")  # tampers with the file
        run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
        store = ResultStore.for_spec(tmp_path, SPEC)
        store.path("4a").write_text("not json{")
        result = run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
        assert result.priced_cells == 4 and result.cached_cells == 8

    def test_store_roundtrip_is_exact(self, tmp_path):
        first = run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
        store = ResultStore.for_spec(tmp_path, SPEC)
        assert store.known_queries() == ["1a", "4a", "6a"]
        fp = config_fingerprint(SPEC.configs[0])
        replayed = store.load("1a")[("PostgreSQL", fp)]
        assert replayed == first.row("1a", "PostgreSQL", "pk")


class TestStreamingReports:
    def test_csv_complete_mid_run_and_canonical_at_end(self, tmp_path):
        csv_path = tmp_path / "stream.csv"
        snapshots = []

        def progress(report):
            with csv_path.open(newline="") as handle:
                snapshots.append((report, list(csv.DictReader(handle))))

        result = run_sweep(SPEC, progress=progress, stream_csv=csv_path)
        assert len(snapshots) == 3
        for i, (report, rows) in enumerate(snapshots, start=1):
            assert report.index == i and report.total == 3
            assert report.priced == 4 and report.cached == 0
            assert len(rows) == 4 * i  # flushed after every unit
            for row in rows:  # every mid-run row is complete
                assert row["query"] and row["estimator"] and row["config"]
                assert float(row["true_cost"]) > 0
                assert float(row["q_error"]) >= 1.0
        # finalized file is byte-identical to the batch writer's output
        batch = result.to_csv(tmp_path / "batch.csv")
        assert csv_path.read_bytes() == batch.read_bytes()

    def test_progress_reports_cache_hits(self, tmp_path):
        run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
        reports = []
        run_sweep(
            SPEC,
            truth_root=tmp_path,
            result_root=tmp_path,
            progress=reports.append,
        )
        assert [r.query for r in reports] == ["1a", "4a", "6a"]
        assert all(r.priced == 0 and r.cached == 4 for r in reports)
        assert "result cache" in reports[0].render()

    def test_streamed_csv_identical_across_runs(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path,
                  stream_csv=a)
        run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path,
                  stream_csv=b)
        assert a.read_bytes() == b.read_bytes()


class TestDatasetThreading:
    def test_tpch_sweep_and_stores(self, tmp_path):
        spec = SweepSpec(
            scale="tiny", seed=7, dataset="tpch",
            estimators=("PostgreSQL",),
            configs=(EnumeratorConfig("pk", indexes=IndexConfig.PK),),
        )
        result = run_sweep(spec, truth_root=tmp_path, result_root=tmp_path)
        assert {r.query for r in result.rows} == {"tpch5", "tpch8", "tpch10"}
        truth = TruthStore(tmp_path, "tiny", 7, dataset="tpch")
        assert truth.known_queries() == ["tpch10", "tpch5", "tpch8"]
        assert "tpch-tiny" in str(truth.directory)
        warm = run_sweep(spec, truth_root=tmp_path, result_root=tmp_path)
        assert warm.priced_cells == 0 and warm.rows == result.rows

    def test_tpch_and_imdb_stores_do_not_collide(self, tmp_path):
        a = TruthStore(tmp_path, "tiny", 42, dataset="imdb")
        b = TruthStore(tmp_path, "tiny", 42, dataset="tpch")
        a.save("q", {1: 10})
        assert b.load("q") is None

    def test_build_resources_rejects_unknown_dataset(self):
        spec = SweepSpec(dataset="oracle12c")
        with pytest.raises(ValueError, match="unknown dataset"):
            build_resources(spec)

    def test_suite_accepts_dataset(self):
        from repro.experiments import ExperimentSuite

        suite = ExperimentSuite(
            scale="tiny", seed=7, dataset="tpch", query_names=["tpch5"]
        )
        assert suite.db.name == "tpch"
        assert [q.name for q in suite.queries] == ["tpch5"]


class TestSatelliteFixes:
    def test_export_counts_does_not_allocate_state(self):
        resources = build_resources(
            SweepSpec(scale="tiny", query_names=("1a",))
        )
        oracle = resources.truth
        query = resources.query("1a")
        assert oracle.cached_state_count() == 0
        counts, unfiltered = oracle.export_counts(query)
        assert counts == {} and unfiltered == {}
        assert oracle.cached_state_count() == 0  # no allocation, no pin

    def test_release_unseen_query_is_noop(self):
        resources = build_resources(
            SweepSpec(scale="tiny", query_names=("1a",))
        )
        resources.truth.release(resources.query("1a"))
        assert resources.truth.cached_state_count() == 0

    def test_cost_models_shared_per_workload(self):
        resources = build_resources(
            SweepSpec(scale="tiny", query_names=("1a",))
        )
        assert resources.cost_model("simple") is resources.cost_model("simple")
        assert resources.cost_model("tuned") is not resources.cost_model(
            "simple"
        )

    def test_truthstore_concurrent_saves_do_not_lose_updates(self, tmp_path):
        """Two slow-merging savers must union, not clobber: the per-query
        flock serialises the whole load-merge-write sequence."""

        class SlowLoadStore(TruthStore):
            def load(self, query_name):
                payload = super().load(query_name)
                time.sleep(0.05)  # widen the race window
                return payload

        store = SlowLoadStore(tmp_path, "tiny", 42, backend="json")
        errors = []

        def save(offset):
            try:
                store.save("1a", {offset: offset + 1}, max_size=2)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=save, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        payload = store.load("1a")
        assert payload.counts == {0: 1, 1: 2, 2: 3, 3: 4}

    def test_atomic_write_fsyncs_data_before_rename_and_dir_after(
        self, tmp_path, monkeypatch
    ):
        """The rename alone is not crash-durable: the temp file's data
        must be fsync'd before ``os.replace`` (or the final name can
        point at a truncated inode after power loss) and the directory
        after (or the rename itself can vanish)."""
        from repro.pipeline.truthstore import atomic_write_json

        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            kind = "dir" if stat.S_ISDIR(os.fstat(fd).st_mode) else "file"
            events.append(("fsync", kind))
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append(("replace", None))
            return real_replace(src, dst)

        monkeypatch.setattr("repro.pipeline.truthstore.os.fsync", spy_fsync)
        monkeypatch.setattr(
            "repro.pipeline.truthstore.os.replace", spy_replace
        )
        atomic_write_json(tmp_path / "q.json", {"v": 1})
        replace_at = events.index(("replace", None))
        assert ("fsync", "file") in events[:replace_at]
        assert ("fsync", "dir") in events[replace_at + 1:]

    def test_failed_flush_never_clobbers_existing_payload(
        self, tmp_path, monkeypatch
    ):
        """A writer dying mid-flush (simulated: fsync raises) must leave
        the previously stored payload untouched at the final path and no
        temp debris behind."""
        from repro.pipeline.truthstore import atomic_write_json

        path = tmp_path / "q.json"
        atomic_write_json(path, {"old": 1})

        def exploding_fsync(fd):
            raise OSError("simulated crash mid-flush")

        monkeypatch.setattr(
            "repro.pipeline.truthstore.os.fsync", exploding_fsync
        )
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_json(path, {"new": 2})
        assert json.loads(path.read_text()) == {"old": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["q.json"]


def _torture_writer(args):
    """One torture process: interleaved sweep-row / deep-cell / truth
    saves to the same query (module-level so the pool can pickle it)."""
    from repro.pipeline.grid import DeepRow, SweepRow

    root, backend, worker_index, per_worker = args
    store = ResultStore(root, "tiny", 42, backend=backend)
    truth = TruthStore(root, "tiny", 42, backend=backend)
    for i in range(per_worker):
        n = worker_index * per_worker + i
        store.save(
            "1a",
            {(f"est{n:03d}", "fp"): SweepRow(
                query="1a", estimator=f"est{n:03d}", config="c",
                est_cost=float(n) + 0.25, true_cost=1.0, optimal_cost=1.0,
                slowdown=1.0, q_error=1.0,
            )},
        )
        store.save_deep(
            "1a",
            {f"subexpr|est{n:03d}|fp": (DeepRow(
                kind="subexpr", query="1a", estimator=f"est{n:03d}",
                config="c", subset=3, true_card=float(n), est_card=0.5,
            ),)},
        )
        truth.save("1a", {n: n + 1}, max_size=2)
    return worker_index


class TestConcurrentWriterTorture:
    """N processes hammering one query through either backend must union
    losslessly — JSON via the per-query flock, SQLite via immediate
    transactions."""

    WORKERS = 4
    PER_WORKER = 6

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_interleaved_process_saves_union_losslessly(
        self, tmp_path, backend
    ):
        total = self.WORKERS * self.PER_WORKER
        jobs = [
            (str(tmp_path), backend, w, self.PER_WORKER)
            for w in range(self.WORKERS)
        ]
        with multiprocessing.get_context().Pool(self.WORKERS) as pool:
            done = pool.map(_torture_writer, jobs)
        assert sorted(done) == list(range(self.WORKERS))

        store = ResultStore(tmp_path, "tiny", 42, backend=backend)
        stored = store.load_all("1a")
        assert len(stored.rows) == total
        assert {e for (e, _) in stored.rows} == {
            f"est{n:03d}" for n in range(total)
        }
        assert len(stored.deep) == total
        truth = TruthStore(tmp_path, "tiny", 42, backend=backend)
        payload = truth.load("1a")
        assert payload.counts == {n: n + 1 for n in range(total)}
        # the manifest agrees with the union (indexed queries, both kinds)
        assert store.index.total_rows() == total
        assert store.index.total_deep_rows() == total

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_interleaved_thread_saves_union_losslessly(
        self, tmp_path, backend
    ):
        """Same torture with threads in one process: concurrent writers
        to the same files/database must union (sqlite connections are
        per-thread under the hood)."""
        store = ResultStore(tmp_path, "tiny", 42, backend=backend)
        truth = TruthStore(tmp_path, "tiny", 42, backend=backend)
        errors = []

        def writer(worker_index):
            try:
                _torture_writer(
                    (str(tmp_path), backend, worker_index, self.PER_WORKER)
                )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,))
            for w in range(self.WORKERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = self.WORKERS * self.PER_WORKER
        assert len(store.load_all("1a").rows) == total
        assert len(store.load_all("1a").deep) == total
        assert truth.load("1a").counts == {n: n + 1 for n in range(total)}


class TestParallelOracleRoundTrip:
    """The level-parallel oracle must be invisible on disk: stores written
    through it are byte-identical to sequentially written ones, and
    preloading from either store round-trips exactly."""

    ORACLE_SPEC = SweepSpec(
        scale="tiny",
        seed=42,
        query_names=("1a", "4a", "6a"),
        estimators=("PostgreSQL", "HyPer"),
        oracle_processes=2,
    )

    @pytest.fixture(autouse=True)
    def _json_backend(self, monkeypatch):
        """Byte-compares per-query truth *files* — JSON storage
        mechanics; sqlite-backend parity lives in test_sqlstore.py."""
        monkeypatch.setenv("REPRO_STORE", "json")

    @staticmethod
    def _truth_bytes(root):
        store = TruthStore(root, "tiny", 42)
        return {
            name: store.path(name).read_bytes()
            for name in store.known_queries()
        }

    def test_store_written_by_parallel_oracle_is_byte_identical(
        self, tmp_path
    ):
        seq_root = tmp_path / "seq"
        par_root = tmp_path / "par"
        sequential = run_sweep(SPEC, truth_root=seq_root)
        parallel = run_sweep(self.ORACLE_SPEC, truth_root=par_root)
        assert parallel.rows == sequential.rows
        seq_bytes = self._truth_bytes(seq_root)
        par_bytes = self._truth_bytes(par_root)
        assert list(seq_bytes) == ["1a", "4a", "6a"]
        assert par_bytes == seq_bytes

    def test_preload_round_trips_through_parallel_oracle(self, tmp_path):
        """A warm run preloading a parallel-written store must replay the
        counts (the store file stays byte-for-byte untouched) and price
        identical rows — in both oracle modes."""
        run_sweep(self.ORACLE_SPEC, truth_root=tmp_path)
        before = self._truth_bytes(tmp_path)
        warm_parallel = run_sweep(self.ORACLE_SPEC, truth_root=tmp_path)
        warm_sequential = run_sweep(SPEC, truth_root=tmp_path)
        assert self._truth_bytes(tmp_path) == before
        assert warm_parallel.rows == warm_sequential.rows
        assert warm_sequential.rows == run_sweep(SPEC).rows

    def test_oracle_processes_not_part_of_cell_identity(self, tmp_path):
        """Flipping oracle_processes is execution policy: a result store
        written sequentially must fully serve the parallel-oracle spec."""
        run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
        replay = run_sweep(
            self.ORACLE_SPEC, truth_root=tmp_path, result_root=tmp_path
        )
        assert replay.priced_cells == 0 and replay.cached_cells == 12


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-v"])
