"""Estimator extensions: join sampling and pessimistic hedging."""

import pytest

from repro.cardinality import (
    JoinSamplingEstimator,
    PessimisticEstimator,
    PostgresEstimator,
    TrueCardinalities,
)
from repro.cardinality.qerror import q_error
from repro.query.predicates import Comparison
from repro.query.query import JoinEdge, Query, Relation
from repro.workloads import job_query


def _toy_query(selections=None):
    return Query(
        "toy",
        [Relation("f", "fact"), Relation("a", "dim_a"), Relation("b", "dim_b")],
        selections or {},
        [
            JoinEdge("f", "a_id", "a", "id", "pk_fk", pk_side="a"),
            JoinEdge("f", "b_id", "b", "id", "pk_fk", pk_side="b"),
        ],
    )


F, A, B = 0b001, 0b010, 0b100


class TestJoinSampling:
    def test_exact_when_sample_covers_table(self, toy_db):
        # sample_size >= all toy tables -> fractions 1.0 -> exact counts
        est = JoinSamplingEstimator(toy_db, sample_size=100)
        card = est.bind(_toy_query())
        assert card(F | A | B) == 8.0
        assert card(F) == 8.0

    def test_scale_factor(self, toy_db):
        est = JoinSamplingEstimator(toy_db, sample_size=4)
        q = _toy_query()
        # fact: 4/8 sampled; dims fully covered (<= 4 rows? dim_a has 5)
        factor = est.scale_factor(q, F)
        assert factor == pytest.approx(2.0)

    def test_fallback_on_empty_sample_join(self, toy_db):
        q = _toy_query({"f": Comparison("value", "=", 123456)})
        est = JoinSamplingEstimator(toy_db, sample_size=100)
        assert est.bind(q)(F | A) == 1.0  # default zero-information value

    def test_explicit_fallback_used(self, toy_db):
        q = _toy_query({"f": Comparison("value", "=", 123456)})
        fallback = PostgresEstimator(toy_db)
        est = JoinSamplingEstimator(toy_db, sample_size=100, fallback=fallback)
        expected = fallback.bind(q)(F | A)
        assert est.bind(q)(F | A) == pytest.approx(expected)

    def test_sees_join_crossing_correlations(self, imdb_tiny):
        """On correlated data, join samples must beat the independence
        estimator for the full join of a correlated star query."""
        q = job_query("16d")
        truth = TrueCardinalities(imdb_tiny).bind(q)
        pg = PostgresEstimator(imdb_tiny).bind(q)
        js = JoinSamplingEstimator(imdb_tiny, sample_size=500).bind(q)
        mid_subsets = [
            s for s in range(1, q.all_mask + 1)
            if bin(s).count("1") == 3
        ]
        # compare average q-error over the 3-relation connected subsets
        from repro.query.join_graph import JoinGraph
        graph = JoinGraph(q)
        pg_errs, js_errs = [], []
        for s in mid_subsets:
            if not graph.is_connected(s):
                continue
            t = truth(s)
            pg_errs.append(q_error(pg(s), t))
            js_errs.append(q_error(js(s), t))
        assert sum(js_errs) / len(js_errs) <= sum(pg_errs) / len(pg_errs)


class TestPessimistic:
    def test_inflation_per_join(self, toy_db):
        base = PostgresEstimator(toy_db)
        hedged = PessimisticEstimator(base, factor=2.0)
        q = _toy_query()
        assert hedged.cardinality(q, F) == base.cardinality(q, F)
        assert hedged.cardinality(q, F | A) == pytest.approx(
            2.0 * base.cardinality(q, F | A)
        )
        assert hedged.cardinality(q, F | A | B) == pytest.approx(
            4.0 * base.cardinality(q, F | A | B)
        )

    def test_factor_validation(self, toy_db):
        with pytest.raises(ValueError):
            PessimisticEstimator(PostgresEstimator(toy_db), factor=0.5)

    def test_unfiltered_passthrough(self, toy_db):
        q = _toy_query({"a": Comparison("color", "=", "blue")})
        base = PostgresEstimator(toy_db)
        hedged = PessimisticEstimator(base, factor=3.0)
        assert hedged.bind(q).unfiltered(F | A, "a") == pytest.approx(
            3.0 * base.bind(q).unfiltered(F | A, "a")
        )

    def test_name_mentions_base(self, toy_db):
        hedged = PessimisticEstimator(PostgresEstimator(toy_db), factor=2.0)
        assert "postgres" in hedged.name
