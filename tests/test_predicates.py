"""Predicate evaluation semantics, including SQL NULL handling and LIKE."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.column import Column
from repro.catalog.table import Table
from repro.errors import QueryError
from repro.query.predicates import (
    And,
    Between,
    Comparison,
    InList,
    IsNotNull,
    IsNull,
    Like,
    Not,
    Or,
    _like_to_regex,
)


def _int_table(values, nulls=None):
    return Table("t", [Column("x", values, nulls=nulls)])


def _str_table(values):
    return Table("t", [Column("s", values, kind="str")])


class TestComparison:
    def test_all_int_ops(self):
        t = _int_table([1, 2, 3, 4])
        cases = {
            "=": [False, True, False, False],
            "!=": [True, False, True, True],
            "<": [True, False, False, False],
            "<=": [True, True, False, False],
            ">": [False, False, True, True],
            ">=": [False, True, True, True],
        }
        for op, expected in cases.items():
            assert Comparison("x", op, 2).evaluate(t).tolist() == expected

    def test_null_never_matches(self):
        t = _int_table([1, 2], nulls=np.array([False, True]))
        assert Comparison("x", "=", 2).evaluate(t).tolist() == [False, False]
        assert Comparison("x", "!=", 1).evaluate(t).tolist() == [False, False]

    def test_string_equality(self):
        t = _str_table(["a", "b", None])
        assert Comparison("s", "=", "b").evaluate(t).tolist() == [False, True, False]

    def test_string_absent_value(self):
        t = _str_table(["a", "c"])
        assert Comparison("s", "=", "b").evaluate(t).tolist() == [False, False]
        # range semantics preserved for an absent pivot: 'a' < 'b' < 'c'
        assert Comparison("s", "<", "b").evaluate(t).tolist() == [True, False]
        assert Comparison("s", ">", "b").evaluate(t).tolist() == [False, True]

    def test_type_mismatch_raises(self):
        with pytest.raises(QueryError):
            Comparison("x", "=", "oops").evaluate(_int_table([1]))
        with pytest.raises(QueryError):
            Comparison("s", "=", 5).evaluate(_str_table(["a"]))

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError):
            Comparison("x", "~", 1)


class TestBetween:
    def test_inclusive(self):
        t = _int_table([1, 2, 3, 4, 5])
        assert Between("x", 2, 4).evaluate(t).tolist() == [
            False, True, True, True, False,
        ]

    def test_open_ends(self):
        t = _int_table([1, 2, 3])
        assert Between("x", None, 2).evaluate(t).tolist() == [True, True, False]
        assert Between("x", 2, None).evaluate(t).tolist() == [False, True, True]

    def test_null_excluded(self):
        t = _int_table([2, 2], nulls=np.array([False, True]))
        assert Between("x", 1, 3).evaluate(t).tolist() == [True, False]


class TestInList:
    def test_ints(self):
        t = _int_table([1, 2, 3])
        assert InList("x", [1, 3]).evaluate(t).tolist() == [True, False, True]

    def test_strings(self):
        t = _str_table(["a", "b", "c"])
        assert InList("s", ["a", "c", "zz"]).evaluate(t).tolist() == [
            True, False, True,
        ]

    def test_all_absent_strings(self):
        t = _str_table(["a"])
        assert InList("s", ["zz"]).evaluate(t).tolist() == [False]

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            InList("x", [])


class TestLike:
    def test_prefix_suffix_substring(self):
        t = _str_table(["apple pie", "crab apple", "banana", None])
        assert Like("s", "apple%").evaluate(t).tolist() == [
            True, False, False, False,
        ]
        assert Like("s", "%apple").evaluate(t).tolist() == [
            False, True, False, False,
        ]
        assert Like("s", "%an%").evaluate(t).tolist() == [
            False, False, True, False,
        ]

    def test_underscore(self):
        t = _str_table(["cat", "cut", "coat"])
        assert Like("s", "c_t").evaluate(t).tolist() == [True, True, False]

    def test_negation_excludes_nulls(self):
        t = _str_table(["cat", None])
        assert Like("s", "dog%", negate=True).evaluate(t).tolist() == [
            True, False,
        ]

    def test_regex_special_chars_escaped(self):
        t = _str_table(["a.b", "axb"])
        assert Like("s", "a.b").evaluate(t).tolist() == [True, False]

    def test_like_on_int_rejected(self):
        with pytest.raises(QueryError):
            Like("x", "%").evaluate(_int_table([1]))

    def test_like_to_regex_anchored(self):
        assert _like_to_regex("ab") == r"ab\Z"
        assert _like_to_regex("%b_") == r".*b.\Z"


class TestNullTests:
    def test_is_null(self):
        t = _int_table([1, 2], nulls=np.array([True, False]))
        assert IsNull("x").evaluate(t).tolist() == [True, False]
        assert IsNotNull("x").evaluate(t).tolist() == [False, True]


class TestBooleanCombinators:
    def test_and_or_not(self):
        t = _int_table([1, 2, 3, 4])
        a = Comparison("x", ">", 1)
        b = Comparison("x", "<", 4)
        assert And([a, b]).evaluate(t).tolist() == [False, True, True, False]
        assert Or([Not(a), Not(b)]).evaluate(t).tolist() == [
            True, False, False, True,
        ]

    def test_operator_sugar(self):
        t = _int_table([1, 2, 3])
        combo = Comparison("x", ">", 1) & Comparison("x", "<", 3)
        assert combo.evaluate(t).tolist() == [False, True, False]
        combo = Comparison("x", "=", 1) | Comparison("x", "=", 3)
        assert combo.evaluate(t).tolist() == [True, False, True]

    def test_flattening(self):
        a, b, c = (Comparison("x", "=", i) for i in range(3))
        assert len(And([And([a, b]), c]).children) == 3
        assert len(Or([Or([a, b]), c]).children) == 3

    def test_not_respects_nulls(self):
        # NOT (x = 2) must not match NULL rows (three-valued logic)
        t = _int_table([1, 2, 0], nulls=np.array([False, False, True]))
        assert Not(Comparison("x", "=", 2)).evaluate(t).tolist() == [
            True, False, False,
        ]

    def test_empty_combinators_rejected(self):
        with pytest.raises(QueryError):
            And([])
        with pytest.raises(QueryError):
            Or([])

    def test_columns_union(self):
        t = And([Comparison("a", "=", 1), Comparison("b", "=", 2)])
        assert t.columns() == {"a", "b"}


@given(
    st.lists(st.integers(-50, 50), min_size=1, max_size=80),
    st.integers(-60, 60),
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
)
def test_comparison_matches_numpy(values, pivot, op):
    t = _int_table(values)
    got = Comparison("x", op, pivot).evaluate(t)
    arr = np.asarray(values)
    expected = {
        "=": arr == pivot,
        "!=": arr != pivot,
        "<": arr < pivot,
        "<=": arr <= pivot,
        ">": arr > pivot,
        ">=": arr >= pivot,
    }[op]
    assert got.tolist() == expected.tolist()
