"""Cardinality estimators: formulas, clamps, profiles, q-error metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cardinality import (
    CoarseHistogramEstimator,
    DampedEstimator,
    InjectedCardinalities,
    MagicConstantEstimator,
    PostgresEstimator,
    SamplingEstimator,
    TrueCardinalities,
    q_error,
    signed_ratio,
)
from repro.cardinality.qerror import q_error_percentiles
from repro.errors import EstimationError
from repro.query.predicates import Comparison, Like
from repro.query.query import JoinEdge, Query, Relation
from repro.workloads import job_query


def _toy_query(selections=None):
    return Query(
        "toy",
        [Relation("f", "fact"), Relation("a", "dim_a"), Relation("b", "dim_b")],
        selections or {},
        [
            JoinEdge("f", "a_id", "a", "id", "pk_fk", pk_side="a"),
            JoinEdge("f", "b_id", "b", "id", "pk_fk", pk_side="b"),
        ],
    )


F, A, B = 0b001, 0b010, 0b100


class TestQError:
    def test_symmetry_example(self):
        # the paper's example: estimates 10 and 1000 for truth 100
        assert q_error(10, 100) == pytest.approx(10)
        assert q_error(1000, 100) == pytest.approx(10)

    def test_zero_clamped(self):
        assert q_error(0, 10) == 10
        assert q_error(10, 0) == 10

    @given(
        st.floats(0.1, 1e9),
        st.floats(0.1, 1e9),
    )
    def test_properties(self, est, true):
        q = q_error(est, true)
        assert q >= 1
        assert q == pytest.approx(q_error(true, est))  # symmetric

    def test_signed_ratio_direction(self):
        assert signed_ratio(10, 100) == pytest.approx(0.1)
        assert signed_ratio(100, 10) == pytest.approx(10)

    def test_percentiles(self):
        pct = q_error_percentiles([1, 10], [1, 1], pcts=(50, 100))
        assert pct[100] == pytest.approx(10)
        with pytest.raises(ValueError):
            q_error_percentiles([], [])
        with pytest.raises(ValueError):
            q_error_percentiles([1], [1, 2])


class TestPostgresEstimator:
    def test_unselective_base_exact(self, toy_db):
        est = PostgresEstimator(toy_db)
        card = est.bind(_toy_query())
        assert card(F) == 8
        assert card(A) == 5

    def test_pk_fk_join_formula(self, toy_db):
        # |fact ⋈ dim_a| = 8 * 5 / max(nd(a_id), nd(id)) = 8*5/5 = 8
        est = PostgresEstimator(toy_db)
        card = est.bind(_toy_query())
        assert card(F | A) == pytest.approx(8, rel=0.25)

    def test_clamped_to_one(self, toy_db):
        q = _toy_query({
            "a": Comparison("color", "=", "red"),
            "b": Comparison("size", "=", 10),
            "f": Comparison("value", "=", 9),
        })
        card = PostgresEstimator(toy_db).bind(q)
        assert card(F | A | B) >= 1.0

    def test_independence_multiplies(self, toy_db):
        q1 = _toy_query({"a": Comparison("color", "=", "blue")})
        q2 = _toy_query()
        est = PostgresEstimator(toy_db)
        sel_card = est.bind(q1)(F | A)
        full_card = est.bind(q2)(F | A)
        assert sel_card < full_card

    def test_unfiltered_drops_selection(self, toy_db):
        q = _toy_query({"a": Comparison("color", "=", "blue")})
        card = PostgresEstimator(toy_db).bind(q)
        assert card.unfiltered(F | A, "a") > card(F | A)

    def test_like_uses_magic_constant(self, imdb_tiny):
        q = Query(
            "likeq",
            [Relation("n", "name")],
            {"n": Like("name", "%Smith%")},
            [],
        )
        card = PostgresEstimator(imdb_tiny).bind(q)
        n_rows = imdb_tiny.table("name").n_rows
        assert card(1) == pytest.approx(max(n_rows * 0.005, 1.0))

    def test_true_distinct_variant_lower_or_equal(self, imdb_tiny):
        """Sampled distinct counts are underestimates, so swapping in the
        true ones can only shrink join estimates (larger denominators)."""
        q = job_query("13d")
        default = PostgresEstimator(imdb_tiny).bind(q)
        exact = PostgresEstimator(imdb_tiny, use_true_distincts=True).bind(q)
        assert exact(q.all_mask) <= default(q.all_mask) * 1.001

    def test_missing_statistics_raises(self, imdb_tiny):
        from repro.catalog.schema import Database

        empty = Database("empty")
        empty.tables = imdb_tiny.tables  # tables but no statistics
        est = PostgresEstimator(empty)
        q = _toy_query()
        with pytest.raises(EstimationError):
            est.cardinality(
                Query(
                    "q",
                    [Relation("t", "title")],
                    {"t": Comparison("production_year", ">", 2000)},
                    [],
                ),
                1,
            )


class TestSamplingEstimator:
    def test_near_exact_for_common_predicates(self, imdb_tiny):
        q = Query(
            "s",
            [Relation("t", "title")],
            {"t": Comparison("production_year", ">", 2000)},
            [],
        )
        est = SamplingEstimator(imdb_tiny).bind(q)
        truth = TrueCardinalities(imdb_tiny).bind(q)
        assert q_error(est(1), truth(1)) < 1.6

    def test_zero_sample_fallback(self, imdb_tiny):
        # an impossible predicate yields zero sample matches -> magic
        q = Query(
            "s",
            [Relation("t", "title")],
            {"t": Comparison("production_year", "=", 1800)},
            [],
        )
        est = SamplingEstimator(imdb_tiny).bind(q)
        assert est(1) >= 1.0  # clamped magic fallback, not zero

    def test_correlated_intra_table_predicates(self, imdb_tiny):
        """Sampling sees intra-table correlation that independence-based
        histograms cannot: conjunction on correlated columns."""
        q = Query(
            "s",
            [Relation("t", "title")],
            {
                "t": Comparison("kind_id", "=", 7)
                & Comparison("episode_nr", ">", 0),
            },
            [],
        )
        sample_est = SamplingEstimator(imdb_tiny).bind(q)
        pg_est = PostgresEstimator(imdb_tiny).bind(q)
        truth = TrueCardinalities(imdb_tiny).bind(q)
        assert q_error(sample_est(1), truth(1)) <= q_error(pg_est(1), truth(1))


class TestProfiles:
    def test_damped_raises_multi_join_estimates(self, imdb_tiny):
        q = job_query("13d")
        damped = DampedEstimator(imdb_tiny).bind(q)
        sampling = SamplingEstimator(imdb_tiny).bind(q)
        assert damped(q.all_mask) >= sampling(q.all_mask)

    def test_coarse_underestimates_joins(self, imdb_tiny):
        q = job_query("13d")
        coarse = CoarseHistogramEstimator(imdb_tiny).bind(q)
        pg = PostgresEstimator(imdb_tiny).bind(q)
        assert coarse(q.all_mask) <= pg(q.all_mask) * 1.01

    def test_magic_ignores_data(self, imdb_tiny):
        est = MagicConstantEstimator(imdb_tiny)
        q1 = Query(
            "m1", [Relation("t", "title")],
            {"t": Comparison("production_year", "=", 2005)}, [],
        )
        q2 = Query(
            "m2", [Relation("t", "title")],
            {"t": Comparison("kind_id", "=", 1)}, [],
        )
        assert est.cardinality(q1, 1) == est.cardinality(q2, 1)

    def test_all_estimators_at_least_one(self, imdb_tiny):
        q = job_query("17b")
        for est_cls in (
            PostgresEstimator, SamplingEstimator, DampedEstimator,
            CoarseHistogramEstimator, MagicConstantEstimator,
        ):
            card = est_cls(imdb_tiny).bind(q)
            assert card(q.all_mask) >= 1.0


class TestInjection:
    def test_override_wins(self, toy_db):
        q = _toy_query()
        base = PostgresEstimator(toy_db)
        injected = InjectedCardinalities(base, overrides={F | A: 12345.0})
        card = injected.bind(q)
        assert card(F | A) == 12345.0
        # non-overridden subsets fall through
        assert card(F) == base.bind(q)(F)

    def test_unfiltered_override(self, toy_db):
        q = _toy_query({"a": Comparison("color", "=", "blue")})
        injected = InjectedCardinalities(
            PostgresEstimator(toy_db),
            unfiltered_overrides={(F | A, "a"): 777.0},
        )
        assert injected.bind(q).unfiltered(F | A, "a") == 777.0

    def test_transform(self, toy_db):
        q = _toy_query()
        injected = InjectedCardinalities(
            PostgresEstimator(toy_db),
            transform=lambda query, subset, value: value * 10,
        )
        base = PostgresEstimator(toy_db).bind(q)
        assert injected.bind(q)(F) == pytest.approx(base(F) * 10)

    def test_from_estimator(self, toy_db):
        q = _toy_query()
        source = TrueCardinalities(toy_db)
        injected = InjectedCardinalities.from_estimator(
            source, q, [F, F | A], PostgresEstimator(toy_db)
        )
        assert injected.bind(q)(F | A) == 8.0

    def test_bound_card_invalid_subset(self, toy_db):
        card = PostgresEstimator(toy_db).bind(_toy_query())
        with pytest.raises(EstimationError):
            card(0)
        with pytest.raises(EstimationError):
            card.unfiltered(F, "a")  # alias not in subset
