"""Exception hierarchy and small stats utilities."""

import pytest

from repro.errors import (
    CatalogError,
    EnumerationError,
    EstimationError,
    PlanError,
    QueryError,
    ReproError,
    WorkBudgetExceeded,
)
from repro.util.stats import geometric_mean, percentile, quantiles


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            CatalogError, QueryError, PlanError, EstimationError,
            EnumerationError, WorkBudgetExceeded,
        ):
            assert issubclass(exc, ReproError)

    def test_budget_exceeded_payload(self):
        exc = WorkBudgetExceeded(200.0, 100.0)
        assert exc.work_done == 200.0
        assert exc.budget == 100.0
        assert "200" in str(exc)


class TestStatsUtil:
    def test_percentile(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_quantiles(self):
        q = quantiles(list(range(101)))
        assert q[5] == pytest.approx(5)
        assert q[95] == pytest.approx(95)
        with pytest.raises(ValueError):
            quantiles([])

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1, 0])
