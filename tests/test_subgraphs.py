"""Connected-subgraph and csg–cmp enumeration, checked against brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.join_graph import JoinGraph
from repro.query.query import JoinEdge, Query, Relation
from repro.query.subgraphs import (
    SubgraphCatalog,
    connected_subsets,
    csg_cmp_pairs,
)
from repro.util.bitset import bit_indices, popcount


def _graph_from_edges(n, edges):
    relations = [Relation(f"r{i}", f"t{i}") for i in range(n)]
    joins = [
        JoinEdge(f"r{i}", "x", f"r{j}", "y", "fk_fk") for i, j in edges
    ]
    return JoinGraph(Query("g", relations, {}, joins))


def _brute_force_csgs(graph, max_size=None):
    n = graph.n
    cap = max_size if max_size is not None else n
    out = []
    for mask in range(1, 1 << n):
        if popcount(mask) <= cap and graph.is_connected(mask):
            out.append(mask)
    return sorted(out, key=lambda s: (popcount(s), s))


def _chain(n):
    return _graph_from_edges(n, [(i, i + 1) for i in range(n - 1)])


def _star(n_leaves):
    return _graph_from_edges(n_leaves + 1, [(0, i + 1) for i in range(n_leaves)])


def _cycle(n):
    return _graph_from_edges(n, [(i, (i + 1) % n) for i in range(n)])


class TestConnectedSubsets:
    def test_chain_count(self):
        # a chain of n vertices has n(n+1)/2 connected subsets
        for n in (2, 3, 5, 7):
            assert len(connected_subsets(_chain(n))) == n * (n + 1) // 2

    def test_star_count(self):
        # hub + k leaves: 2^k subsets containing the hub, + k singletons
        for k in (2, 3, 5):
            assert len(connected_subsets(_star(k))) == 2**k + k

    def test_matches_brute_force(self):
        for graph in (_chain(5), _star(4), _cycle(5)):
            assert connected_subsets(graph) == _brute_force_csgs(graph)

    def test_max_size_cap(self):
        graph = _chain(6)
        capped = connected_subsets(graph, max_size=3)
        assert capped == _brute_force_csgs(graph, max_size=3)

    def test_no_duplicates(self):
        for graph in (_chain(6), _star(5), _cycle(6)):
            subs = connected_subsets(graph)
            assert len(subs) == len(set(subs))


class TestCsgCmpPairs:
    def _check_pairs(self, graph):
        pairs = csg_cmp_pairs(graph)
        seen = set()
        for s1, s2 in pairs:
            assert s1 & s2 == 0, "disjoint"
            assert graph.is_connected(s1)
            assert graph.is_connected(s2)
            assert graph.connects(s1, s2), "edge between the halves"
            key = frozenset((s1, s2))
            assert key not in seen, "each unordered pair exactly once"
            seen.add(key)
        return pairs

    def test_validity(self):
        for graph in (_chain(5), _star(4), _cycle(5)):
            self._check_pairs(graph)

    def test_counts_vs_brute_force(self):
        for graph in (_chain(4), _star(3), _cycle(4)):
            pairs = self._check_pairs(graph)
            expected = 0
            csgs = set(connected_subsets(graph))
            for s1, s2 in itertools.combinations(sorted(csgs), 2):
                if s1 & s2 == 0 and graph.connects(s1, s2):
                    expected += 1
            assert len(pairs) == expected

    def test_sorted_by_union_size(self):
        pairs = csg_cmp_pairs(_chain(5))
        sizes = [popcount(a | b) for a, b in pairs]
        assert sizes == sorted(sizes)


class TestSubgraphCatalog:
    def test_expansion_parent_property(self):
        graph = _star(4)
        catalog = SubgraphCatalog(graph)
        for subset in catalog.csgs:
            if popcount(subset) < 2:
                continue
            parent, bit = catalog.expansion_parent(subset)
            assert parent | bit == subset
            assert parent & bit == 0
            assert popcount(bit) == 1
            assert graph.is_connected(parent)
            assert graph.connects(parent, bit)

    def test_singleton_parent_rejected(self):
        catalog = SubgraphCatalog(_chain(3))
        with pytest.raises(ValueError):
            catalog.expansion_parent(0b001)

    def test_is_csg(self):
        catalog = SubgraphCatalog(_chain(3))
        assert catalog.is_csg(0b011)
        assert not catalog.is_csg(0b101)


@settings(max_examples=40, deadline=None)
@given(st.integers(3, 7), st.data())
def test_random_graphs_match_brute_force(n, data):
    # random connected graph: spanning path + random extra edges
    edges = [(i, i + 1) for i in range(n - 1)]
    extra = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=5,
        )
    )
    for i, j in extra:
        if i != j:
            edges.append((min(i, j), max(i, j)))
    graph = _graph_from_edges(n, edges)
    assert connected_subsets(graph) == _brute_force_csgs(graph)
    # every pair in the pair list joins two already-enumerated csgs
    csgs = set(connected_subsets(graph))
    for s1, s2 in csg_cmp_pairs(graph):
        assert s1 in csgs and s2 in csgs
        assert (s1 | s2) in csgs


def test_pairs_cover_all_composite_csgs():
    """DP completeness: every composite csg appears as some pair's union."""
    for graph in (_chain(5), _star(4), _cycle(5)):
        unions = {s1 | s2 for s1, s2 in csg_cmp_pairs(graph)}
        for subset in connected_subsets(graph):
            if popcount(subset) >= 2:
                assert subset in unions, (
                    f"csg {bit_indices(subset)} unreachable by DP"
                )
