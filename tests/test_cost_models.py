"""Cost models: formula fidelity, monotonicity, INLJ unfiltered handling."""

import pytest

from repro.cardinality import PostgresEstimator, TrueCardinalities
from repro.cost import (
    PostgresCostModel,
    SimpleCostModel,
    TunedPostgresCostModel,
)
from repro.cost.base import plan_cost
from repro.plans import JoinNode, ScanNode
from repro.query.predicates import Comparison
from repro.query.query import JoinEdge, Query, Relation


def _toy_query(selections=None):
    return Query(
        "toy",
        [Relation("f", "fact"), Relation("a", "dim_a"), Relation("b", "dim_b")],
        selections or {},
        [
            JoinEdge("f", "a_id", "a", "id", "pk_fk", pk_side="a"),
            JoinEdge("f", "b_id", "b", "id", "pk_fk", pk_side="b"),
        ],
    )


def _hash_plan(q):
    fa = JoinNode(
        ScanNode(0, "f", "fact"), ScanNode(1, "a", "dim_a"), "hash",
        [q.joins[0]],
    )
    return JoinNode(fa, ScanNode(2, "b", "dim_b"), "hash", [q.joins[1]])


def _inlj_plan(q):
    fa = JoinNode(
        ScanNode(1, "a", "dim_a"), ScanNode(0, "f", "fact"), "inlj",
        [q.joins[0]], index_edge=q.joins[0],
    )
    return JoinNode(fa, ScanNode(2, "b", "dim_b"), "hash", [q.joins[1]])


class TestSimpleCostModel:
    def test_paper_formula_by_hand(self, toy_db):
        """C_mm on the toy plan, computed symbolically:
        scans: τ(8 + 5 + 3); hash joins: |f⋈a| + |f⋈a⋈b| = 8 + 8."""
        q = _toy_query()
        card = TrueCardinalities(toy_db).bind(q)
        model = SimpleCostModel(toy_db, tau=0.2, lam=2.0)
        got = plan_cost(_hash_plan(q), model, card)
        expected = 0.2 * (8 + 5 + 3) + 8 + 8
        assert got == pytest.approx(expected)

    def test_inlj_inner_scan_not_charged(self, toy_db):
        """INLJ term: C(T1) + λ·|T1|·max(|T1⋈R|/|T1|, 1); the inner scan
        (τ·|fact|) must NOT appear."""
        q = _toy_query()
        card = TrueCardinalities(toy_db).bind(q)
        model = SimpleCostModel(toy_db, tau=0.2, lam=2.0)
        got = plan_cost(_inlj_plan(q), model, card)
        # scans: a (5), b (3); INLJ: λ*max(|a⋈f|=8, |a|=5)=16; top hash: 8
        expected = 0.2 * (5 + 3) + 2.0 * 8 + 8
        assert got == pytest.approx(expected)

    def test_inlj_uses_unfiltered_inner(self, toy_db):
        """With a selection on the INLJ inner, fetches are pre-selection."""
        q = _toy_query({"f": Comparison("value", "=", 9)})
        card = TrueCardinalities(toy_db).bind(q)
        model = SimpleCostModel(toy_db)
        fa = _inlj_plan(q).left
        cost = model.join_cost(fa, card)
        # unfiltered |a ⋈ fact| = 8 fetched lookups, even though only
        # 2 rows survive the value = 9 filter
        assert cost == pytest.approx(2.0 * 8)

    def test_parameter_validation(self, toy_db):
        with pytest.raises(ValueError):
            SimpleCostModel(toy_db, tau=0.0)
        with pytest.raises(ValueError):
            SimpleCostModel(toy_db, lam=0.5)

    def test_unknown_algorithm_rejected(self, toy_db):
        q = _toy_query()
        node = JoinNode(
            ScanNode(0, "f", "fact"), ScanNode(1, "a", "dim_a"), "smj",
            [q.joins[0]],
        )
        node.algorithm = "bogus"  # simulate corruption
        card = TrueCardinalities(toy_db).bind(q)
        with pytest.raises(ValueError):
            SimpleCostModel(toy_db).join_cost(node, card)


class TestPostgresCostModel:
    def test_costs_positive_and_monotone(self, imdb_tiny):
        model = PostgresCostModel(imdb_tiny)
        scan_small = ScanNode(0, "kt", "kind_type")
        scan_big = ScanNode(1, "ci", "cast_info")
        q = Query(
            "q",
            [Relation("kt", "kind_type"), Relation("ci", "cast_info")],
            {},
            [JoinEdge("ci", "role_id", "kt", "id", "pk_fk", pk_side="kt")],
        )
        card = PostgresEstimator(imdb_tiny).bind(q)
        assert 0 < model.scan_cost(scan_small, card) < model.scan_cost(
            scan_big, card
        )

    def test_nlj_quadratic_dominates(self, imdb_tiny):
        q = Query(
            "q",
            [Relation("ci", "cast_info"), Relation("mi", "movie_info")],
            {},
            [JoinEdge("ci", "movie_id", "mi", "movie_id", "fk_fk")],
        )
        card = PostgresEstimator(imdb_tiny).bind(q)
        model = PostgresCostModel(imdb_tiny)
        scan_ci = ScanNode(0, "ci", "cast_info")
        scan_mi = ScanNode(1, "mi", "movie_info")
        hash_join = JoinNode(scan_ci, scan_mi, "hash", [q.joins[0]])
        nlj = JoinNode(scan_ci, scan_mi, "nlj", [q.joins[0]])
        assert model.join_cost(nlj, card) > 10 * model.join_cost(
            hash_join, card
        )

    def test_smj_costs_more_than_hash(self, imdb_tiny):
        q = Query(
            "q",
            [Relation("ci", "cast_info"), Relation("mi", "movie_info")],
            {},
            [JoinEdge("ci", "movie_id", "mi", "movie_id", "fk_fk")],
        )
        card = PostgresEstimator(imdb_tiny).bind(q)
        model = PostgresCostModel(imdb_tiny)
        scan_ci = ScanNode(0, "ci", "cast_info")
        scan_mi = ScanNode(1, "mi", "movie_info")
        hash_join = JoinNode(scan_ci, scan_mi, "hash", [q.joins[0]])
        smj = JoinNode(scan_ci, scan_mi, "smj", [q.joins[0]])
        assert model.join_cost(smj, card) > model.join_cost(hash_join, card)

    def test_tuned_scales_cpu_only(self, toy_db):
        q = _toy_query()
        card = TrueCardinalities(toy_db).bind(q)
        standard = PostgresCostModel(toy_db)
        tuned = TunedPostgresCostModel(toy_db)
        node = _hash_plan(q)
        # hash join cost is pure CPU -> exactly 50x
        assert tuned.join_cost(node, card) == pytest.approx(
            50 * standard.join_cost(node, card)
        )
        # scans include page costs -> strictly less than 50x
        scan = ScanNode(0, "f", "fact")
        ratio = tuned.scan_cost(scan, card) / standard.scan_cost(scan, card)
        assert 1 < ratio < 50

    def test_names(self, toy_db):
        assert PostgresCostModel(toy_db).name == "postgres"
        assert TunedPostgresCostModel(toy_db).name == "postgres-tuned"
        assert SimpleCostModel(toy_db).name == "simple"
