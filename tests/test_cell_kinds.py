"""The kind seam: one orchestration core executes every row kind.

The acceptance bar of the ``CellKind`` refactor:

* the registry dispatches both kinds by name and by spec type, and a
  spec survives the JSON payload round trip *exactly* (lease-queue
  workers rebuild their world from that payload);
* ``run_sweep`` / ``run_deep_sweep`` are thin wrappers: each is
  row-for-row identical to ``run_cells`` with the matching kind, cold,
  pooled, and warm (where the warm path prices zero cells for *both*
  kinds through the same generic driver);
* every registered artifact — all 11 shallow and all 5 deep — builds
  byte-identical rows through ``run_cells`` whether replayed from a
  warm store or recomputed.
"""

import json

import pytest

from repro.experiments import frame as frame_mod
from repro.pipeline import (
    DEEP_KIND,
    KINDS,
    SWEEP_KIND,
    DeepSpec,
    EnumeratorConfig,
    SweepSpec,
    kind_for_spec,
    run_cells,
    run_deep_sweep,
    run_sweep,
    spec_digest,
    subexpr_deep_config,
    unit_digest,
)
from repro.pipeline import driver as driver_module
from repro.pipeline import instrument
from repro.pipeline.grid import TRUE_SOURCE, DeepConfig
from repro.physical import IndexConfig

SPEC = SweepSpec(
    scale="tiny",
    seed=42,
    query_names=("1a", "4a"),
    estimators=("PostgreSQL", "HyPer"),
)

DEEP_SPEC = DeepSpec(
    scale="tiny",
    seed=42,
    query_names=("1a", "4a"),
    estimators=("PostgreSQL", TRUE_SOURCE),
    configs=(
        subexpr_deep_config(4),
        DeepConfig(
            name="pk/no-nlj+rehash",
            kind="runtime",
            indexes=IndexConfig.PK,
            allow_nlj=False,
            rehash=True,
        ),
    ),
)


class TestKindRegistry:
    def test_kinds_addressed_by_name(self):
        assert set(KINDS) == {"sweep", "deep"}
        assert KINDS["sweep"] is SWEEP_KIND
        assert KINDS["deep"] is DEEP_KIND

    def test_kind_for_spec_dispatches_by_type(self):
        assert kind_for_spec(SPEC) is SWEEP_KIND
        assert kind_for_spec(DEEP_SPEC) is DEEP_KIND

    def test_kind_for_unknown_spec_rejected(self):
        with pytest.raises(TypeError, match="no cell kind"):
            kind_for_spec(object())

    def test_row_shape_flags(self):
        # the replay-accounting contract: a shallow scan's row count is
        # its cell count; a deep cell owns many rows
        assert SWEEP_KIND.one_row_per_cell is True
        assert DEEP_KIND.one_row_per_cell is False


class TestSpecSerialisation:
    @pytest.mark.parametrize("kind, spec", [
        (SWEEP_KIND, SPEC),
        (
            SWEEP_KIND,
            SweepSpec(
                scale="small",
                seed=7,
                correlation=0.5,
                query_names=None,
                dataset="tpch",
                oracle_processes=2,
                configs=(
                    EnumeratorConfig(
                        "pk", indexes=IndexConfig.PK, allow_nlj=True
                    ),
                ),
            ),
        ),
        (DEEP_KIND, DEEP_SPEC),
    ])
    def test_payload_round_trips_exactly(self, kind, spec):
        payload = json.loads(json.dumps(kind.spec_payload(spec)))
        assert kind.spec_from_payload(payload) == spec

    def test_spec_digest_stable_and_sensitive(self):
        assert spec_digest(SWEEP_KIND, SPEC) == spec_digest(SWEEP_KIND, SPEC)
        changed = SweepSpec(
            scale="tiny",
            seed=43,
            query_names=("1a", "4a"),
            estimators=("PostgreSQL", "HyPer"),
        )
        assert spec_digest(SWEEP_KIND, changed) != spec_digest(
            SWEEP_KIND, SPEC
        )

    def test_unit_digest_content_keyed(self):
        units = SWEEP_KIND.decompose(SPEC)
        again = SWEEP_KIND.decompose(SPEC)
        # same grid delta, same ids — what makes re-enqueueing idempotent
        assert [unit_digest(SWEEP_KIND, u) for u in units] == [
            unit_digest(SWEEP_KIND, u) for u in again
        ]
        narrowed = units[0].restrict({(0, 0)})
        assert unit_digest(SWEEP_KIND, narrowed) != unit_digest(
            SWEEP_KIND, units[0]
        )


class TestWrapperParity:
    def test_run_sweep_is_run_cells_with_sweep_kind(self, tmp_path):
        wrapped = run_sweep(
            SPEC, truth_root=tmp_path, result_root=tmp_path / "a"
        )
        generic = run_cells(
            SPEC,
            SWEEP_KIND,
            truth_root=tmp_path,
            result_root=tmp_path / "b",
        )
        assert generic.rows == wrapped.rows
        assert generic.priced_cells == wrapped.priced_cells == 8

    def test_run_deep_sweep_is_run_cells_with_deep_kind(self, tmp_path):
        wrapped = run_deep_sweep(
            DEEP_SPEC, truth_root=tmp_path, result_root=tmp_path / "a"
        )
        generic = run_cells(
            DEEP_SPEC,
            DEEP_KIND,
            truth_root=tmp_path,
            result_root=tmp_path / "b",
        )
        assert generic.rows == wrapped.rows
        assert generic.priced_cells == wrapped.priced_cells == 8

    def test_pooled_generic_matches_sequential(self, tmp_path):
        sequential = run_cells(SPEC, SWEEP_KIND, truth_root=tmp_path)
        pooled = run_cells(
            SPEC, SWEEP_KIND, processes=2, truth_root=tmp_path
        )
        assert pooled.rows == sequential.rows

    @pytest.mark.parametrize("kind, spec", [
        (SWEEP_KIND, SPEC), (DEEP_KIND, DEEP_SPEC),
    ])
    def test_warm_generic_path_prices_nothing(
        self, kind, spec, tmp_path, monkeypatch
    ):
        first = run_cells(
            spec, kind, truth_root=tmp_path, result_root=tmp_path
        )

        def _no_pricing(*args, **kwargs):
            raise AssertionError("a fully cached run must not price cells")

        monkeypatch.setattr(driver_module, "price_cells", _no_pricing)
        monkeypatch.setattr(driver_module, "price_deep_cells", _no_pricing)
        monkeypatch.setattr(driver_module, "build_resources", _no_pricing)
        second = run_cells(
            spec, kind, truth_root=tmp_path, result_root=tmp_path
        )
        assert second.priced_cells == 0
        assert second.cached_cells == first.priced_cells
        assert second.rows == first.rows


# --------------------------------------------------------------------- #
# every registered artifact, both kinds, through the one generic driver
# --------------------------------------------------------------------- #

BASE = SweepSpec(scale="tiny", seed=42, query_names=("1a", "4a"))


@pytest.fixture(scope="module")
def parity_root(tmp_path_factory):
    """One shared store; the first pass over each artifact warms it."""
    return tmp_path_factory.mktemp("kind-parity-store")


@pytest.mark.parametrize("name", [
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "table1", "table2", "table3", "ablation",
    "fig3-deep", "fig5-deep", "fig6-deep", "fig7-deep", "fig8-deep",
])
class TestArtifactKindParity:
    def test_rows_byte_identical_warm_and_cold(self, name, parity_root):
        definition = frame_mod._registry()[name]
        kind = DEEP_KIND if definition.deep else SWEEP_KIND
        cold = [
            run_cells(
                spec,
                kind,
                truth_root=parity_root,
                result_root=parity_root,
            )
            for spec in definition.specs(BASE)
        ]
        before = instrument.snapshot()
        warm = [
            run_cells(
                spec,
                kind,
                truth_root=parity_root,
                result_root=parity_root,
            )
            for spec in definition.specs(BASE)
        ]
        delta = instrument.snapshot() - before
        assert delta.cells_priced == 0
        assert delta.deep_cells_priced == 0
        assert delta.db_generations == 0
        assert sum(r.priced_cells for r in warm) == 0
        assert [w.rows for w in warm] == [c.rows for c in cold]
