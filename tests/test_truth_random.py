"""Property-based cross-check: truth oracle vs an independent brute force.

Random SPJ queries over the hand-built toy database are counted two ways:
by the production truth oracle (compressed bottom-up materialisation) and
by a deliberately naive triple loop.  Any divergence would indicate a bug
in the oracle's expansion-parent machinery, key compression, or NULL
handling.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cardinality import TrueCardinalities
from repro.query.predicates import Between, Comparison
from repro.query.query import JoinEdge, Query, Relation


def _naive_count(db, query):
    """Enumerate the full cross product with Python loops (toy sizes)."""
    tables = {
        rel.alias: db.table(rel.table) for rel in query.relations
    }
    row_id_lists = {}
    for alias, table in tables.items():
        pred = query.selection_of(alias)
        if pred is None:
            ids = range(table.n_rows)
        else:
            ids = np.nonzero(pred.evaluate(table))[0].tolist()
        row_id_lists[alias] = list(ids)

    aliases = [rel.alias for rel in query.relations]

    def matches(assignment):
        for edge in query.joins:
            lt = tables[edge.left_alias]
            rt = tables[edge.right_alias]
            lv = lt.column(edge.left_column).values[
                assignment[edge.left_alias]
            ]
            rv = rt.column(edge.right_column).values[
                assignment[edge.right_alias]
            ]
            from repro.catalog.column import NULL_INT

            if lv == NULL_INT or rv == NULL_INT or lv != rv:
                return False
        return True

    count = 0

    def recurse(i, assignment):
        nonlocal count
        if i == len(aliases):
            if matches(assignment):
                count += 1
            return
        alias = aliases[i]
        for rid in row_id_lists[alias]:
            assignment[alias] = rid
            recurse(i + 1, assignment)

    recurse(0, {})
    return count


_PREDICATES = [
    None,
    ("f", Comparison("value", "=", 7)),
    ("f", Between("value", 8, 9)),
    ("a", Comparison("color", "=", "blue")),
    ("a", Comparison("color", "!=", "red")),
    ("b", Comparison("size", ">", 10)),
]

_EDGE_POOL = [
    JoinEdge("f", "a_id", "a", "id", "pk_fk", pk_side="a"),
    JoinEdge("f", "b_id", "b", "id", "pk_fk", pk_side="b"),
    JoinEdge("f", "a_id", "f2", "a_id", "fk_fk"),
    JoinEdge("f2", "b_id", "b", "id", "pk_fk", pk_side="b"),
]


@settings(max_examples=25, deadline=None)
@given(
    sel_idx=st.lists(
        st.integers(0, len(_PREDICATES) - 1), min_size=1, max_size=3
    ),
    use_f2=st.booleans(),
)
def test_truth_matches_naive_enumeration(toy_db, sel_idx, use_f2):
    relations = [
        Relation("f", "fact"), Relation("a", "dim_a"), Relation("b", "dim_b"),
    ]
    edges = [_EDGE_POOL[0], _EDGE_POOL[1]]
    if use_f2:
        relations.append(Relation("f2", "fact"))
        edges += [_EDGE_POOL[2], _EDGE_POOL[3]]
    selections = {}
    for i in sel_idx:
        entry = _PREDICATES[i]
        if entry is not None:
            selections[entry[0]] = entry[1]
    query = Query("rand", relations, selections, edges)
    truth = TrueCardinalities(toy_db).bind(query)
    assert truth(query.all_mask) == _naive_count(toy_db, query)
