"""ANALYZE statistics: distinct estimation, MCVs, histograms, selectivity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.column import Column
from repro.catalog.statistics import (
    _duj1_distinct,
    analyze_column,
    analyze_table,
)
from repro.catalog.table import Table


def _stats_for(values, sample_size=None, **kwargs):
    col = Column("x", values)
    table = Table("t", [col])
    n = sample_size if sample_size is not None else len(values)
    ids = table.sample_row_ids(n, seed=0)
    return analyze_column(col, ids, table.n_rows, **kwargs)


class TestDuj1:
    def test_exact_for_full_sample(self):
        sample = np.array([1, 1, 2, 3])
        assert _duj1_distinct(sample, n_rows=4) == 3

    def test_exact_for_unique_column(self):
        # all values distinct in sample of a larger unique column: the
        # estimator scales up to the full table size
        sample = np.arange(100)
        assert _duj1_distinct(sample, n_rows=1000) == pytest.approx(1000)

    def test_underestimates_skew(self):
        # Zipfian-ish column: a few heavy values plus a long unique tail
        rng = np.random.default_rng(0)
        heavy = rng.integers(0, 5, 800)
        tail = np.arange(10_000, 10_000 + 5000)
        column = np.concatenate([np.tile(heavy, 10), tail])
        rng.shuffle(column)
        sample = column[:1000]
        est = _duj1_distinct(sample, n_rows=len(column))
        true = len(np.unique(column))
        assert est < true, "Duj1 should underestimate skewed columns"

    def test_empty(self):
        assert _duj1_distinct(np.array([], dtype=np.int64), 10) == 0.0


class TestColumnStatistics:
    def test_null_fraction(self):
        col = Column("x", [1, 2, 3, 4], nulls=np.array([True, False, True, False]))
        table = Table("t", [col])
        stats = analyze_column(col, np.arange(4), 4)
        assert stats.null_frac == 0.5

    def test_mcvs_capture_heavy_hitters(self):
        values = [7] * 50 + [8] * 30 + list(range(100, 120))
        stats = _stats_for(values)
        assert 7 in stats.mcv_values.tolist()
        assert 8 in stats.mcv_values.tolist()
        total = stats.mcv_freqs.sum() + stats.histogram_frac + stats.null_frac
        assert total == pytest.approx(1.0, abs=0.01)

    def test_eq_selectivity_mcv(self):
        values = [7] * 50 + [8] * 30 + list(range(100, 120))
        stats = _stats_for(values)
        assert stats.eq_selectivity(7) == pytest.approx(0.5, abs=0.02)

    def test_eq_selectivity_non_mcv_uniform(self):
        values = [7] * 50 + list(range(100, 150))
        stats = _stats_for(values)
        sel = stats.eq_selectivity(110)
        assert 0 < sel < 0.1

    def test_range_selectivity_bounds(self):
        stats = _stats_for(list(range(1000)))
        assert stats.range_selectivity(None, None) == pytest.approx(1.0, abs=0.02)
        assert stats.range_selectivity(5000, None) == pytest.approx(0.0, abs=0.01)
        half = stats.range_selectivity(None, 499)
        assert half == pytest.approx(0.5, abs=0.06)

    def test_range_selectivity_monotone(self):
        stats = _stats_for(list(range(1000)))
        sels = [stats.range_selectivity(None, hi) for hi in (100, 300, 700, 900)]
        assert sels == sorted(sels)

    def test_true_distinct_exact(self):
        values = [1, 1, 2, 3, 3, 3]
        stats = _stats_for(values)
        assert stats.true_distinct == 3

    def test_empty_column(self):
        stats = _stats_for([], sample_size=0)
        assert stats.n_distinct == 0
        assert stats.true_distinct == 0


class TestAnalyzeTable:
    def test_all_columns_covered(self):
        table = Table(
            "t",
            [Column("a", [1, 2, 3]), Column("s", ["x", "y", "z"], kind="str")],
        )
        stats = analyze_table(table)
        assert set(stats.columns) == {"a", "s"}
        assert stats.n_rows == 3

    def test_string_column_stats_in_code_space(self):
        table = Table("t", [Column("s", ["a"] * 9 + ["b"], kind="str")])
        stats = analyze_table(table)
        # code 0 = 'a' has frequency 0.9
        assert stats.column("s").eq_selectivity(0) == pytest.approx(0.9)


@settings(max_examples=30)
@given(
    st.lists(st.integers(0, 50), min_size=2, max_size=300),
)
def test_statistics_invariants(values):
    stats = _stats_for(values)
    assert 0 <= stats.null_frac <= 1
    assert stats.n_distinct <= len(values)
    assert stats.n_distinct >= 1
    assert stats.true_distinct == len(set(values))
    assert 0 <= stats.histogram_frac <= 1
    # selectivities stay in [0, 1]
    for v in (0, 25, 50):
        assert 0 <= stats.eq_selectivity(v) <= 1
    assert 0 <= stats.range_selectivity(10, 40) <= 1
