"""Shared fixtures: tiny databases and suites, built once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.column import Column
from repro.catalog.schema import Database, ForeignKey
from repro.catalog.statistics import analyze_database
from repro.catalog.table import Table
from repro.datagen import generate_imdb, generate_tpch
from repro.experiments import ExperimentSuite


@pytest.fixture(scope="session")
def imdb_tiny() -> Database:
    return generate_imdb("tiny", seed=42)


@pytest.fixture(scope="session")
def tpch_tiny() -> Database:
    return generate_tpch("tiny", seed=7)


@pytest.fixture(scope="session")
def suite_tiny() -> ExperimentSuite:
    """A suite over a representative subset of JOB queries (kept small so
    the whole test run stays fast)."""
    return ExperimentSuite(
        scale="tiny",
        query_names=[
            "1a", "2a", "4a", "5c", "6a", "13a", "13d", "16d", "17b",
            "25c", "32a",
        ],
    )


@pytest.fixture(scope="session")
def toy_db() -> Database:
    """A tiny hand-built 3-table star schema with exactly known contents.

    ``fact`` references ``dim_a`` and ``dim_b``; every cardinality is
    computable by hand, which the truth-oracle and executor tests rely on.
    """
    db = Database("toy")
    db.add_table(
        Table(
            "dim_a",
            [
                Column("id", np.arange(1, 6)),  # 5 rows
                Column("color", ["red", "red", "blue", "green", "blue"],
                       kind="str"),
            ],
            primary_key="id",
        )
    )
    db.add_table(
        Table(
            "dim_b",
            [
                Column("id", np.arange(1, 4)),  # 3 rows
                Column("size", np.array([10, 20, 30])),
            ],
            primary_key="id",
        )
    )
    # fact: 8 rows; a_id fan-out: 1->3, 2->2, 3->1, 4->1, 5->1
    db.add_table(
        Table(
            "fact",
            [
                Column("id", np.arange(1, 9)),
                Column("a_id", np.array([1, 1, 1, 2, 2, 3, 4, 5])),
                Column("b_id", np.array([1, 2, 3, 1, 2, 1, 1, 3])),
                Column("value", np.array([7, 7, 8, 9, 7, 8, 9, 7])),
            ],
            primary_key="id",
        )
    )
    db.add_foreign_key(ForeignKey("fact", "a_id", "dim_a", "id"))
    db.add_foreign_key(ForeignKey("fact", "b_id", "dim_b", "id"))
    analyze_database(db, sample_size=100)
    return db
