"""The exact-cardinality oracle, cross-checked against brute force."""

import numpy as np
import pytest

from repro.cardinality import TrueCardinalities
from repro.errors import EstimationError
from repro.query.predicates import Comparison
from repro.query.query import JoinEdge, Query, Relation


def _toy_query(selections=None):
    """fact ⋈ dim_a ⋈ dim_b star over the hand-built toy database."""
    return Query(
        "toy",
        [Relation("f", "fact"), Relation("a", "dim_a"), Relation("b", "dim_b")],
        selections or {},
        [
            JoinEdge("f", "a_id", "a", "id", "pk_fk", pk_side="a"),
            JoinEdge("f", "b_id", "b", "id", "pk_fk", pk_side="b"),
        ],
    )


F, A, B = 0b001, 0b010, 0b100


class TestToyTruth:
    def test_base_cards(self, toy_db):
        truth = TrueCardinalities(toy_db)
        q = _toy_query()
        card = truth.bind(q)
        assert card(F) == 8
        assert card(A) == 5
        assert card(B) == 3

    def test_base_with_selection(self, toy_db):
        q = _toy_query({"a": Comparison("color", "=", "blue")})
        card = TrueCardinalities(toy_db).bind(q)
        assert card(A) == 2  # ids 3 and 5

    def test_pk_fk_join_preserves_fact(self, toy_db):
        # every fact row matches exactly one dim row
        card = TrueCardinalities(toy_db).bind(_toy_query())
        assert card(F | A) == 8
        assert card(F | B) == 8
        assert card(F | A | B) == 8

    def test_join_with_selection(self, toy_db):
        # blue dims are ids {3, 5}; fact rows with a_id in {3, 5}: 2
        q = _toy_query({"a": Comparison("color", "=", "blue")})
        card = TrueCardinalities(toy_db).bind(q)
        assert card(F | A) == 2

    def test_unfiltered_intermediate(self, toy_db):
        q = _toy_query({"a": Comparison("color", "=", "blue")})
        card = TrueCardinalities(toy_db).bind(q)
        assert card(F | A) == 2
        # dropping dim_a's selection restores the full PK-FK join
        assert card.unfiltered(F | A, "a") == 8

    def test_unfiltered_base(self, toy_db):
        q = _toy_query({"a": Comparison("color", "=", "blue")})
        card = TrueCardinalities(toy_db).bind(q)
        assert card.unfiltered(A, "a") == 5

    def test_disconnected_subset_rejected(self, toy_db):
        card = TrueCardinalities(toy_db).bind(_toy_query())
        with pytest.raises(EstimationError):
            card(A | B)  # dims are not adjacent

    def test_unfiltered_alias_outside_subset_rejected(self, toy_db):
        card = TrueCardinalities(toy_db).bind(_toy_query())
        with pytest.raises(EstimationError):
            card.unfiltered(F, "a")

    def test_compute_all(self, toy_db):
        truth = TrueCardinalities(toy_db)
        q = _toy_query()
        counts = truth.compute_all(q)
        assert counts[F | A | B] == 8
        # f, a, b, fa, fb, fab — the disconnected {a,b} subset is skipped
        assert len(counts) == 6

    def test_max_rows_guard(self, toy_db):
        truth = TrueCardinalities(toy_db, max_rows=3)
        card = truth.bind(_toy_query())
        with pytest.raises(EstimationError):
            card(F | A)


class TestTruthVsBruteForce:
    def test_fk_fk_multiplicity(self, toy_db):
        """An n:m self-pairing through fact must count multiplicities."""
        q = Query(
            "nm",
            [Relation("f1", "fact"), Relation("f2", "fact")],
            {},
            [JoinEdge("f1", "a_id", "f2", "a_id", "fk_fk")],
        )
        card = TrueCardinalities(toy_db).bind(q)
        a_ids = toy_db.table("fact").column("a_id").values
        expected = sum(
            int(np.sum(a_ids == v) ** 2) for v in np.unique(a_ids)
        )
        assert card(0b11) == expected

    def test_matches_brute_force_on_imdb_subgraph(self, imdb_tiny):
        """3-relation star on real generated data vs a numpy brute force."""
        q = Query(
            "check",
            [
                Relation("t", "title"),
                Relation("mc", "movie_companies"),
                Relation("mk", "movie_keyword"),
            ],
            {"t": Comparison("production_year", ">", 2005)},
            [
                JoinEdge("mc", "movie_id", "t", "id", "pk_fk", pk_side="t"),
                JoinEdge("mk", "movie_id", "t", "id", "pk_fk", pk_side="t"),
            ],
        )
        card = TrueCardinalities(imdb_tiny).bind(q)
        t = imdb_tiny.table("title")
        years = t.column("production_year").values
        sel_ids = t.column("id").values[
            (years > 2005) & ~t.column("production_year").null_mask
        ]
        mc_movie = imdb_tiny.table("movie_companies").column("movie_id").values
        mk_movie = imdb_tiny.table("movie_keyword").column("movie_id").values
        expected = 0
        for tid in sel_ids:
            expected += int(np.sum(mc_movie == tid)) * int(
                np.sum(mk_movie == tid)
            )
        assert card(0b111) == expected

    def test_cached_results_stable(self, toy_db):
        truth = TrueCardinalities(toy_db)
        q = _toy_query()
        card = truth.bind(q)
        first = card(F | A | B)
        truth.release(q)
        assert card(F | A | B) == first


class TestComputeAllCacheCompleteness:
    """A truncated ``compute_all`` must never satisfy a wider request."""

    def test_capped_then_full_does_not_serve_truncated_cache(self, toy_db):
        truth = TrueCardinalities(toy_db)
        q = _toy_query()
        capped = truth.compute_all(q, max_size=1)
        assert set(capped) == {F, A, B}
        full = truth.compute_all(q)
        # the truncated level set from the first call must not be
        # mistaken for a finished enumeration
        assert set(full) == {F, A, B, F | A, F | B, F | A | B}
        assert full[F | A | B] == 8

    def test_full_then_capped_is_served_from_cache(self, toy_db):
        truth = TrueCardinalities(toy_db)
        q = _toy_query()
        full = truth.compute_all(q)
        state = truth._state(q)
        assert state.covered(None) and state.covered(2)
        # a later *narrower* request returns without recomputing
        capped = truth.compute_all(q, max_size=2)
        assert capped == full

    def test_cover_request_beyond_relation_count_is_full(self, toy_db):
        truth = TrueCardinalities(toy_db)
        q = _toy_query()
        truth.compute_all(q, max_size=7)  # 7 > 3 relations == full
        assert truth._state(q).covered(None)

    def test_preload_without_cover_claims_nothing(self, toy_db):
        truth = TrueCardinalities(toy_db)
        q = _toy_query()
        source = TrueCardinalities(toy_db).compute_all(q)
        truth.preload(q, source)
        assert not truth._state(q).covered(1)
        assert truth.compute_all(q) == source

    def test_preload_with_truncated_cover_recomputes_the_rest(self, toy_db):
        truth = TrueCardinalities(toy_db)
        q = _toy_query()
        source = TrueCardinalities(toy_db).compute_all(q)
        truncated = {s: n for s, n in source.items() if s in (F, A, B)}
        truth.preload(q, truncated, cover=1)
        state = truth._state(q)
        assert state.covered(1) and not state.covered(None)
        assert truth.compute_all(q) == source

    def test_preload_with_full_cover_serves_from_cache(self, toy_db):
        truth = TrueCardinalities(toy_db)
        q = _toy_query()
        source = TrueCardinalities(toy_db).compute_all(q)
        # deliberately perturbed counts prove the cache (not a recompute)
        # answers a covered request — preloads are trusted ground truth
        marked = {s: n + 1 for s, n in source.items()}
        truth.preload(q, marked, cover=None)
        assert truth.compute_all(q) == marked
