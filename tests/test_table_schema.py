"""Tests for Table and Database catalog objects."""

import numpy as np
import pytest

from repro.catalog.column import Column
from repro.catalog.schema import Database, ForeignKey
from repro.catalog.table import Table
from repro.errors import CatalogError


def _table(name="t", n=10, pk="id"):
    return Table(
        name,
        [Column("id", np.arange(n)), Column("v", np.arange(n) % 3)],
        primary_key=pk,
    )


class TestTable:
    def test_basic(self):
        t = _table()
        assert t.n_rows == 10
        assert "id" in t and "v" in t and "nope" not in t
        assert t.column("v").values.tolist() == [0, 1, 2] * 3 + [0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a", [1, 2]), Column("b", [1])])

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a", [1]), Column("a", [2])])

    def test_missing_pk_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a", [1])], primary_key="id")

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            _table().column("nope")

    def test_n_pages_positive(self):
        assert _table(n=1).n_pages >= 1
        assert _table(n=100000).n_pages > _table(n=10).n_pages

    def test_sample_deterministic_and_unique(self):
        t = _table(n=1000)
        s1 = t.sample_row_ids(50, seed=3)
        s2 = t.sample_row_ids(50, seed=3)
        assert np.array_equal(s1, s2)
        assert len(np.unique(s1)) == 50
        s3 = t.sample_row_ids(50, seed=4)
        assert not np.array_equal(s1, s3)

    def test_sample_caps_at_table_size(self):
        t = _table(n=5)
        assert len(t.sample_row_ids(100)) == 5

    def test_sample_table(self):
        t = _table(n=100)
        s = t.sample(10, seed=1)
        assert s.n_rows == 10
        assert s.primary_key == "id"
        assert set(s.columns) == {"id", "v"}


class TestDatabase:
    def test_add_and_lookup(self):
        db = Database("d")
        db.add_table(_table("a"))
        assert db.table("a").name == "a"
        with pytest.raises(CatalogError):
            db.table("missing")

    def test_duplicate_table_rejected(self):
        db = Database("d")
        db.add_table(_table("a"))
        with pytest.raises(CatalogError):
            db.add_table(_table("a"))

    def test_foreign_key_validation(self):
        db = Database("d")
        db.add_table(_table("a"))
        db.add_table(_table("b"))
        db.add_foreign_key(ForeignKey("a", "v", "b", "id"))
        assert db.is_foreign_key("a", "v")
        assert not db.is_foreign_key("b", "v")
        with pytest.raises(CatalogError):
            db.add_foreign_key(ForeignKey("a", "nope", "b", "id"))
        with pytest.raises(CatalogError):
            db.add_foreign_key(ForeignKey("a", "v", "b", "nope"))

    def test_pk_detection(self):
        db = Database("d")
        db.add_table(_table("a"))
        assert db.is_primary_key("a", "id")
        assert not db.is_primary_key("a", "v")

    def test_total_rows(self):
        db = Database("d")
        db.add_table(_table("a", n=3))
        db.add_table(_table("b", n=4))
        assert db.total_rows == 7

    def test_foreign_keys_of(self):
        db = Database("d")
        db.add_table(_table("a"))
        db.add_table(_table("b"))
        fk = db.add_foreign_key(ForeignKey("a", "v", "b", "id"))
        assert db.foreign_keys_of("a") == [fk]
        assert db.foreign_keys_of("b") == []
