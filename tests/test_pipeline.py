"""Pipeline: grid parity (sequential ≡ parallel ≡ legacy suite), truth store.

The acceptance bar for the sweep driver is *bit-identical* results: the
multiprocessing path must produce exactly the per-query (plan cost,
q-error) floats of the sequential path, which in turn must match what a
hand-rolled loop over the ``ExperimentSuite`` accessors computes.
"""

import json

import pytest

from repro.cost.base import plan_cost
from repro.cardinality.qerror import q_error
from repro.enumeration.dp import DPEnumerator
from repro.experiments import ExperimentSuite
from repro.pipeline import (
    SweepSpec,
    TruthStore,
    build_resources,
    run_sweep,
    sweep_query,
)
from repro.pipeline.grid import make_cost_model

SPEC = SweepSpec(
    scale="tiny",
    seed=42,
    query_names=("1a", "4a", "6a"),
    estimators=("PostgreSQL", "HyPer"),
)


@pytest.fixture(scope="module")
def sequential():
    return run_sweep(SPEC)


class TestGridShape:
    def test_full_cross_product(self, sequential):
        assert len(sequential.rows) == 3 * 2 * 2
        keys = [(r.query, r.estimator, r.config) for r in sequential.rows]
        assert len(set(keys)) == len(keys)
        assert {r.query for r in sequential.rows} == {"1a", "4a", "6a"}

    def test_rows_sane(self, sequential):
        for row in sequential.rows:
            assert row.est_cost > 0
            assert row.true_cost > 0
            assert row.optimal_cost > 0
            assert row.slowdown >= 1.0 - 1e-9
            assert row.q_error >= 1.0

    def test_render_and_csv(self, sequential, tmp_path):
        text = sequential.render()
        assert "Sweep" in text and "q-error" in text
        path = sequential.to_csv(tmp_path / "rows.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(sequential.rows)
        assert lines[0].startswith("query,estimator,config")


class TestParity:
    def test_sequential_matches_legacy_suite_path(self, sequential):
        """Replicate the sweep with the plain ExperimentSuite accessors —
        every float must agree exactly."""
        suite = ExperimentSuite(
            scale=SPEC.scale, seed=SPEC.seed,
            query_names=list(SPEC.query_names),
        )
        expected = {}
        for config in SPEC.configs:
            cost_model = make_cost_model(config.cost_model, suite.db)
            dp = DPEnumerator(
                cost_model, suite.design(config.indexes), allow_nlj=False
            )
            for query in suite.queries:
                ctx = suite.context(query)
                tcard = suite.true_card(query)
                _, optimal = dp.optimize(ctx, tcard)
                for estimator in SPEC.estimators:
                    card = suite.card(estimator, query)
                    plan, est_cost = dp.optimize(ctx, card)
                    expected[(query.name, estimator, config.name)] = (
                        est_cost,
                        plan_cost(plan, cost_model, tcard),
                        q_error(card(query.all_mask), tcard(query.all_mask)),
                    )
        assert len(expected) == len(sequential.rows)
        for row in sequential.rows:
            est_cost, true_cost, qerr = expected[
                (row.query, row.estimator, row.config)
            ]
            assert row.est_cost == est_cost
            assert row.true_cost == true_cost
            assert row.q_error == qerr

    def test_parallel_bit_identical(self, sequential, tmp_path):
        parallel = run_sweep(SPEC, processes=2, truth_root=tmp_path)
        assert parallel.rows == sequential.rows

    def test_parallel_reruns_from_store_identically(self, tmp_path):
        """Second parallel run hits the disk store and must not drift."""
        first = run_sweep(SPEC, processes=2, truth_root=tmp_path)
        second = run_sweep(SPEC, processes=2, truth_root=tmp_path)
        assert first.rows == second.rows


class TestWorkspaceSharing:
    def test_one_card_per_query_estimator(self):
        resources = build_resources(SPEC)
        query = resources.query("1a")
        ws = resources.workspace(query)
        assert ws.card("PostgreSQL") is ws.card("PostgreSQL")
        assert resources.workspace(query) is ws
        assert ws.context.catalog is ws.catalog

    def test_suite_delegates_to_workspace(self):
        suite = ExperimentSuite(scale="tiny", query_names=["1a"])
        query = suite.queries[0]
        assert suite.context(query) is suite.workspace(query).context
        assert suite.card("HyPer", query) is suite.workspace(query).card("HyPer")
        assert suite.true_card(query) is suite.workspace(query).true_card

    def test_workspace_pins_truth_state_across_churn(self):
        """A workspace must keep its query's truth counts alive even when
        other queries churn through the oracle's bounded LRU."""
        resources = build_resources(SPEC)
        resources.truth.max_cached_queries = 1
        ws1 = resources.workspace(resources.query("1a"))
        counts = ws1.compute_truth()
        for name in ("4a", "6a"):
            resources.workspace(resources.query(name)).compute_truth()
        resources.truth.max_rows = 0  # any re-materialisation would raise
        assert ws1.true_card(ws1.query.all_mask) == float(
            counts[ws1.query.all_mask]
        )

    def test_store_preload_survives_lru_churn(self, tmp_path):
        """Disk-preloaded counts must not be lost to LRU eviction and then
        silently recomputed (the store is checked once per workspace)."""
        spec = SweepSpec(
            scale="tiny", seed=42, query_names=("1a",),
            estimators=("PostgreSQL",),
        )
        run_sweep(spec, truth_root=tmp_path)  # populate the store
        resources = build_resources(SPEC, truth_root=tmp_path)
        resources.truth.max_cached_queries = 1
        ws = resources.workspace(resources.query("1a"))
        ws.compute_truth()  # preloaded from disk
        for name in ("4a", "6a"):
            resources.workspace(resources.query(name)).compute_truth()
        resources.truth.max_rows = 0
        ws.compute_truth()  # cached counts only — must not raise

    def test_catalog_pair_edges_match_loop_derivation(self):
        """pair_edges must be exactly the non-empty edges_between results,
        in pairs order — the DP loop's previous derivation."""
        resources = build_resources(SPEC)
        ws = resources.workspace(resources.query("6a"))
        catalog, graph = ws.catalog, ws.graph
        derived = [
            (s1, s2, graph.edges_between(s1, s2))
            for s1, s2 in catalog.pairs
            if graph.edges_between(s1, s2)
        ]
        assert catalog.pair_edges == derived


class TestTruthStore:
    def test_roundtrip(self, tmp_path):
        store = TruthStore(tmp_path, "tiny", 42)
        store.save("1a", {1: 10, 3: 4}, {(3, "t"): 7}, max_size=2)
        payload = store.load("1a")
        assert payload.counts == {1: 10, 3: 4}
        assert payload.unfiltered == {(3, "t"): 7}
        assert payload.max_size == 2
        assert payload.covers(2) and not payload.covers(3)
        assert not payload.covers(None)

    def test_merge_widens_coverage(self, tmp_path):
        store = TruthStore(tmp_path, "tiny", 42)
        store.save("1a", {1: 10}, max_size=2)
        store.save("1a", {3: 4}, max_size=None)
        payload = store.load("1a")
        assert payload.counts == {1: 10, 3: 4}
        assert payload.max_size is None
        # narrower save later must not shrink coverage
        store.save("1a", {7: 2}, max_size=3)
        assert store.load("1a").max_size is None

    def test_corrupt_file_treated_as_absent(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "json")  # tampers with the file
        store = TruthStore(tmp_path, "tiny", 42)
        store.save("1a", {1: 10})
        store.path("1a").write_text("not json{")
        assert store.load("1a") is None

    def test_missing_is_none(self, tmp_path):
        store = TruthStore(tmp_path, "tiny", 42)
        assert store.load("nope") is None
        assert store.known_queries() == []

    def test_distinct_databases_do_not_collide(self, tmp_path):
        a = TruthStore(tmp_path, "tiny", 42)
        b = TruthStore(tmp_path, "tiny", 43)
        c = TruthStore(tmp_path, "small", 42)
        a.save("1a", {1: 10})
        assert b.load("1a") is None
        assert c.load("1a") is None

    def test_sweep_populates_and_reuses_store(self, tmp_path):
        spec = SweepSpec(
            scale="tiny", seed=42, query_names=("1a",),
            estimators=("PostgreSQL",),
        )
        first = run_sweep(spec, truth_root=tmp_path)
        store = TruthStore(tmp_path, "tiny", 42)
        assert store.known_queries() == ["1a"]
        payload = store.load("1a")
        assert payload.counts  # exact counts persisted

        # a fresh run preloads the stored counts instead of recomputing
        resources = build_resources(spec, truth_root=tmp_path)
        resources.truth.max_rows = 0  # any re-materialisation would raise
        rows = sweep_query(
            resources, resources.query("1a"), spec
        )
        assert rows == [r for r in first.rows if r.query == "1a"]

    def test_warm_run_does_not_rewrite_store(self, tmp_path, monkeypatch):
        """A sweep that only consumed disk counts must not rewrite them."""
        # stats the per-query file's mtime: JSON storage mechanics (a
        # sqlite connection touches the shared file even when reading)
        monkeypatch.setenv("REPRO_STORE", "json")
        spec = SweepSpec(
            scale="tiny", seed=42, query_names=("1a",),
            estimators=("PostgreSQL",),
        )
        run_sweep(spec, truth_root=tmp_path)
        store = TruthStore(tmp_path, "tiny", 42)
        stamp = store.path("1a").stat().st_mtime_ns
        run_sweep(spec, truth_root=tmp_path)  # warm: preload only
        assert store.path("1a").stat().st_mtime_ns == stamp

    def test_truth_root_conflicts_with_prebuilt_resources(self, tmp_path):
        resources = build_resources(SPEC)
        with pytest.raises(ValueError):
            run_sweep(SPEC, truth_root=tmp_path, resources=resources)

    def test_prebuilt_resources_rejected_in_pool_mode(self):
        resources = build_resources(SPEC)
        with pytest.raises(ValueError):
            run_sweep(SPEC, processes=2, resources=resources)

    def test_partial_compute_does_not_claim_full_coverage(self, tmp_path):
        """save_truth without an explicit max_size must stamp the widest
        coverage actually enumerated, never more."""
        resources = build_resources(SPEC, truth_root=tmp_path)
        ws = resources.workspace(resources.query("6a"))
        ws.compute_truth(max_size=2)
        ws.save_truth()
        payload = TruthStore(tmp_path, "tiny", 42).load("6a")
        assert payload.max_size == 2
        assert not payload.covers(None)

    def test_stored_counts_match_oracle(self, tmp_path):
        spec = SweepSpec(
            scale="tiny", seed=42, query_names=("1a",),
            estimators=("PostgreSQL",),
        )
        run_sweep(spec, truth_root=tmp_path)
        payload = TruthStore(tmp_path, "tiny", 42).load("1a")
        suite = ExperimentSuite(scale="tiny", query_names=["1a"])
        query = suite.queries[0]
        tcard = suite.true_card(query)
        for subset, count in payload.counts.items():
            assert tcard(subset) == float(count)

    def test_payload_json_is_stable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "json")  # reads the raw file
        store = TruthStore(tmp_path, "tiny", 42)
        store.save("1a", {3: 4, 1: 10})
        raw = json.loads(store.path("1a").read_text())
        assert raw["version"] == 1
        assert list(raw["counts"]) == ["1", "3"]  # sorted, stringified


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-v"])
