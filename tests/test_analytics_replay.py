"""Replayable analytics: store index, streaming aggregation, report parity.

The acceptance bar of the replay layer:

* every registered figure/table renders **byte-identical** text whether
  its frame was replayed from a warm :class:`ResultStore` or recomputed
  from scratch, and the warm path performs **zero database generation
  and zero cell pricing** (asserted via the instrument counters);
* the store's manifest index never serves stale lookups — externally
  appended rows invalidate and rebuild the affected entry;
* a :class:`StreamingAggregator` fed rows in any completion order
  produces the same summary as a batch fold in canonical order
  (bit-identical in exact mode, within documented bounds for the P²
  sketch mode);
* a malformed row in a per-query file drops only itself.
"""

import json
import os
import random

import pytest

from repro.experiments import frame as frame_mod
from repro.pipeline import (
    EnumeratorConfig,
    ResultStore,
    StreamingAggregator,
    SweepSpec,
    aggregate_store,
    config_fingerprint,
    run_sweep,
)
from repro.pipeline import instrument
from repro.pipeline.aggregate import P2Quantile, _exact_quantile
from repro.pipeline.index import INDEX_FILENAME
from repro.physical import IndexConfig

SPEC = SweepSpec(
    scale="tiny",
    seed=42,
    query_names=("1a", "4a", "6a"),
    estimators=("PostgreSQL", "HyPer"),
)


@pytest.fixture()
def warm_store(tmp_path, monkeypatch):
    """A store fully covering SPEC, plus its directory root.

    Pinned to the JSON backend whatever ``REPRO_STORE`` says: the
    corruption/manifest tests below tamper with the per-query JSON files
    directly, which is exactly the mechanics the JSON backend owns (the
    SQLite backend's parity has its own differential suite).
    """
    monkeypatch.setenv("REPRO_STORE", "json")
    run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
    return ResultStore.for_spec(tmp_path, SPEC), tmp_path


# --------------------------------------------------------------------- #
# satellite: ResultStore.load drops only the malformed row
# --------------------------------------------------------------------- #


class TestRowLevelCorruption:
    def _corrupt_one_row(self, store, query):
        path = store.path(query)
        raw = json.loads(path.read_text())
        key = sorted(raw["rows"])[0]
        raw["rows"][key]["q_error"] = "not-a-float"
        path.write_text(json.dumps(raw))
        return key

    def test_load_keeps_intact_rows(self, warm_store):
        store, _ = warm_store
        bad_key = self._corrupt_one_row(store, "4a")
        rows = store.load("4a")
        assert len(rows) == 3  # 4 cells, one dropped
        estimator, _, fingerprint = bad_key.partition("|")
        assert (estimator, fingerprint) not in rows
        assert store.dropped_rows == 1

    def test_sweep_reprices_exactly_the_dropped_cell(self, warm_store):
        store, root = warm_store
        self._corrupt_one_row(store, "4a")
        result = run_sweep(SPEC, truth_root=root, result_root=root)
        assert result.priced_cells == 1 and result.cached_cells == 11
        assert result.rows == run_sweep(SPEC).rows

    def test_whole_file_corruption_still_reads_empty(self, warm_store):
        store, _ = warm_store
        store.path("4a").write_text("not json{")
        assert store.load("4a") == {}

    def test_load_many_counts_each_drop_once(self, warm_store):
        """The index rebuild's parse is reused by load_many, so one
        malformed row is counted (and logged) exactly once."""
        store, _ = warm_store
        self._corrupt_one_row(store, "4a")
        loaded = store.load_many(["1a", "4a", "6a"])
        assert len(loaded["4a"]) == 3
        assert store.dropped_rows == 1


# --------------------------------------------------------------------- #
# storage layer: manifest index
# --------------------------------------------------------------------- #


class TestStoreIndex:
    def test_load_many_serves_all_queries_via_manifest(self, warm_store):
        store, _ = warm_store
        loaded = store.load_many(["1a", "4a", "6a", "13d"])
        assert set(loaded) == {"1a", "4a", "6a", "13d"}
        assert all(len(loaded[q]) == 4 for q in ("1a", "4a", "6a"))
        assert loaded["13d"] == {}  # absent per the index: no file open
        assert (store.directory / INDEX_FILENAME).exists()

    def test_load_many_matches_per_file_loads(self, warm_store):
        store, _ = warm_store
        batch = store.load_many(["1a", "4a", "6a"])
        assert batch == {q: store.load(q) for q in ("1a", "4a", "6a")}

    def test_manifest_maps_cells_to_row_keys(self, warm_store):
        store, _ = warm_store
        fp = config_fingerprint(SPEC.configs[0])
        assert store.index.lookup("1a", "PostgreSQL", fp)
        assert not store.index.lookup("1a", "PostgreSQL", "0" * 12)
        assert not store.index.lookup("13d", "PostgreSQL", fp)
        assert store.index.total_rows() == 12

    def test_external_append_invalidates_and_rebuilds(self, warm_store):
        """A concurrent sweep writing through its *own* store handle must
        be visible here: per-file mtime/size staleness beats the cached
        manifest, so lookups are never stale."""
        store, root = warm_store
        keys_before = store.index.row_keys("4a")

        wider = SweepSpec(
            scale="tiny",
            seed=42,
            query_names=("4a",),
            estimators=("PostgreSQL", "HyPer", "DBMS A"),
        )
        run_sweep(wider, truth_root=root, result_root=root)  # other handle

        keys_after = store.index.row_keys("4a")
        assert len(keys_after) == 6 and set(keys_before) < set(keys_after)
        fp = config_fingerprint(SPEC.configs[0])
        assert store.index.lookup("4a", "DBMS A", fp)
        # the rebuilt manifest was persisted, not just held in memory
        manifest = json.loads(
            (store.directory / INDEX_FILENAME).read_text()
        )
        assert len(manifest["files"]["4a"]["keys"]) == 6

    def test_deleted_file_drops_out_of_manifest(self, warm_store):
        store, _ = warm_store
        store.index.refresh()
        store.path("4a").unlink()
        assert "4a" not in store.index.refresh()
        assert store.load_many(["4a"]) == {"4a": {}}

    def test_corrupt_manifest_is_rebuilt(self, warm_store):
        store, _ = warm_store
        store.index.refresh()
        (store.directory / INDEX_FILENAME).write_text("}{")
        store.index.invalidate()
        assert sorted(store.index.refresh()) == ["1a", "4a", "6a"]

    def test_manifest_not_listed_as_query(self, warm_store):
        store, _ = warm_store
        store.index.refresh()
        assert store.known_queries() == ["1a", "4a", "6a"]

    def test_same_size_rewrite_within_mtime_granularity_is_not_stale(
        self, warm_store
    ):
        """A rewrite that keeps the file's size AND lands inside the
        filesystem's mtime granularity is invisible to a pure
        ``(mtime_ns, size)`` check — the index must treat entries whose
        mtime is not strictly older than their index stamp as
        unverified and re-parse them."""
        store, _ = warm_store
        path = store.path("4a")
        keys_before = store.index.row_keys("4a")
        assert len(keys_before) == 4

        # freeze the file's stamp ahead of the clock so the indexing
        # below and the rewrite after it land in one mtime granule (the
        # deterministic version of an unlucky same-tick rewrite)
        frozen = path.stat().st_mtime_ns + 2 * 10**9
        os.utime(path, ns=(frozen, frozen))
        store.index.refresh()

        # same-size rewrite: swap one row key's fingerprint for an
        # equal-length marker, byte count unchanged
        old_key = keys_before[0]
        estimator, _, fingerprint = old_key.partition("|")
        new_key = f"{estimator}|{'f' * len(fingerprint)}"
        text = path.read_text()
        rewritten = text.replace(f'"{old_key}"', f'"{new_key}"')
        assert len(rewritten) == len(text) and rewritten != text
        path.write_text(rewritten)
        os.utime(path, ns=(frozen, frozen))  # identical stat, new content

        keys_after = store.index.row_keys("4a")
        assert new_key in keys_after and old_key not in keys_after

    def test_scan_is_deterministic_and_filterable(self, warm_store):
        store, _ = warm_store
        rows = list(store.scan())
        assert len(rows) == 12
        assert rows == list(store.scan())
        pg = list(store.scan(lambda r: r.estimator == "PostgreSQL"))
        assert len(pg) == 6
        assert all(r.estimator == "PostgreSQL" for r in pg)


# --------------------------------------------------------------------- #
# aggregation layer
# --------------------------------------------------------------------- #


class TestStreamingAggregation:
    def test_streaming_equals_batch_in_any_order(self, warm_store):
        """Satellite: random completion order must fold to the same
        summary as the canonical batch order — bit-identical in exact
        mode."""
        store, _ = warm_store
        rows = list(store.scan())
        batch = StreamingAggregator()
        batch.add_many(rows)
        for seed in (0, 1, 2):
            shuffled = rows[:]
            random.Random(seed).shuffle(shuffled)
            streaming = StreamingAggregator()
            streaming.add_many(shuffled)
            assert streaming.summary() == batch.summary()
            assert streaming.summary().render() == batch.summary().render()

    def test_sketch_mode_within_documented_bounds(self, warm_store):
        """P² quantiles are approximate and order-dependent; the
        documented bounds are: always inside the observed [min, max],
        within 50% relative error on these grids."""
        store, _ = warm_store
        rows = list(store.scan())
        exact = StreamingAggregator(exact=True)
        sketch = StreamingAggregator(exact=False)
        exact.add_many(rows)
        shuffled = rows[:]
        random.Random(7).shuffle(shuffled)
        sketch.add_many(shuffled)
        for e_stats, s_stats in zip(
            exact.summary().by_estimator, sketch.summary().by_estimator
        ):
            assert e_stats.estimator == s_stats.estimator
            assert e_stats.n == s_stats.n
            q_errors = [
                r.q_error for r in rows if r.estimator == e_stats.estimator
            ]
            assert min(q_errors) <= s_stats.q_error_median <= max(q_errors)
            assert abs(
                s_stats.q_error_median - e_stats.q_error_median
            ) <= 0.5 * e_stats.q_error_median
            # counts and bucket tallies stay exact in sketch mode
            assert s_stats.frac_slow_2x == e_stats.frac_slow_2x

    def test_p2_sketch_accuracy_on_large_sample(self):
        rng = random.Random(13)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(4000)]
        for p in (0.5, 0.95):
            sketch = P2Quantile(p)
            for v in values:
                sketch.add(v)
            exact = _exact_quantile(sorted(values), p)
            assert abs(sketch.value() - exact) <= 0.1 * exact

    def test_aggregator_as_progress_callback(self, warm_store):
        """The aggregator consumes UnitReports directly; a fully
        replayed sweep folds the same summary as the store scan."""
        store, root = warm_store
        streaming = StreamingAggregator()
        result = run_sweep(
            SPEC, truth_root=root, result_root=root, progress=streaming
        )
        assert result.priced_cells == 0
        summary = streaming.summary()
        assert summary.n_rows == 12 and summary.n_queries == 3
        assert summary.replayed_cells == 12 and summary.priced_cells == 0
        batch = aggregate_store(store)
        assert summary.by_estimator == batch.by_estimator
        assert summary.by_config == batch.by_config

    def test_parallel_and_sequential_summaries_identical(self, tmp_path):
        sequential = StreamingAggregator()
        run_sweep(SPEC, truth_root=tmp_path / "seq", progress=sequential)
        pooled = StreamingAggregator()
        run_sweep(
            SPEC,
            processes=2,
            truth_root=tmp_path / "par",
            progress=pooled,
        )
        assert (
            sequential.summary().by_estimator
            == pooled.summary().by_estimator
        )
        assert sequential.summary().by_config == pooled.summary().by_config

    def test_unit_seconds_threaded_through_reports(self, tmp_path):
        """Satellite: UnitReport carries pricing wall time; replayed
        units report zero, priced units report positive seconds."""
        cold_reports = []
        run_sweep(
            SPEC,
            truth_root=tmp_path,
            result_root=tmp_path,
            progress=cold_reports.append,
        )
        assert all(r.unit_seconds > 0 for r in cold_reports)
        assert all(r.cells_per_second > 0 for r in cold_reports)
        assert all(len(r.rows) == 4 for r in cold_reports)
        assert "cells/s" in cold_reports[0].render()
        warm_reports = []
        run_sweep(
            SPEC,
            truth_root=tmp_path,
            result_root=tmp_path,
            progress=warm_reports.append,
        )
        assert all(r.unit_seconds == 0.0 for r in warm_reports)
        assert all(len(r.rows) == 4 for r in warm_reports)


# --------------------------------------------------------------------- #
# presentation layer: replay/recompute parity for every artifact
# --------------------------------------------------------------------- #

BASE = SweepSpec(scale="tiny", seed=42, query_names=("1a", "4a", "6a"))


@pytest.fixture(scope="module")
def report_root(tmp_path_factory):
    """One shared store; the first pass over the registry warms it."""
    return tmp_path_factory.mktemp("report-store")


@pytest.mark.parametrize("name", [
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "table1", "table2", "table3", "ablation",
])
class TestReportParity:
    def test_replay_matches_recompute_byte_identically(
        self, name, report_root
    ):
        cold = frame_mod.run_report(
            name, BASE, result_root=report_root, truth_root=report_root
        )
        before = instrument.snapshot()
        warm = frame_mod.run_report(
            name, BASE, result_root=report_root, truth_root=report_root
        )
        delta = instrument.snapshot() - before
        # the warm path replays every cell: no pricing, no generation
        assert warm.priced_cells == 0
        assert warm.replayed_cells == cold.priced_cells + cold.replayed_cells
        assert delta.cells_priced == 0 and delta.db_generations == 0
        assert warm.text == cold.text
        # the recompute path (no store) renders the same bytes
        recompute = frame_mod.run_report(
            name, BASE, result_root=None, truth_root=report_root
        )
        assert recompute.replayed_cells == 0
        assert recompute.text == warm.text


class TestReportRegistry:
    def test_known_names_in_paper_order(self):
        assert frame_mod.available_reports() == [
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "table1", "table2", "table3", "ablation",
            "fig3-deep", "fig5-deep", "fig6-deep", "fig7-deep", "fig8-deep",
        ]

    def test_unknown_report_rejected(self):
        with pytest.raises(KeyError, match="unknown report"):
            frame_mod.run_report("fig99", BASE)

    def test_extended_estimator_resolves_for_fig5(self, report_root):
        run = frame_mod.run_report(
            "fig5", BASE, result_root=report_root, truth_root=report_root
        )
        assert "true distincts" in run.text

    def test_fig8_degrades_gracefully_below_fit_minimum(self, tmp_path):
        """A 2-query smoke grid cannot support a 3-point log-log fit;
        the replay must render '-' cells, not crash."""
        two = SweepSpec(scale="tiny", seed=42, query_names=("1a", "4a"))
        run = frame_mod.run_report(
            "fig8", two, result_root=tmp_path, truth_root=tmp_path
        )
        assert "Figure 8 (sweep replay)" in run.text
        assert "-" in run.text


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


class TestReportCli:
    def test_report_warm_path_and_parity(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path)
        args = ["report", "fig6", "--scale", "tiny", "--queries", "1a,4a",
                "--result-cache", root]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "Section 4.1 (sweep replay)" in cold.out
        assert "priced 10" in cold.err
        assert main(args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "replayed 10 cells, priced 0" in warm.err
        assert "databases generated: 0" in warm.err

    def test_report_summary_folds_store(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path)
        run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path)
        assert main(["report", "summary", "--scale", "tiny",
                     "--result-cache", root]) == 0
        out = capsys.readouterr().out
        assert "Sweep aggregate (exact): 12 rows over 3 queries" in out
        assert "PostgreSQL" in out and "HyPer" in out

    def test_report_unknown_artifact_rejected(self, capsys):
        from repro.cli import main

        assert main(["report", "fig99"]) == 2
        assert "unknown report" in capsys.readouterr().err

    def test_sweep_summary_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--scale", "tiny", "--queries", "1a,4a",
            "--estimators", "PostgreSQL,HyPer",
            "--truth-cache", str(tmp_path), "--summary",
        ]) == 0
        out = capsys.readouterr().out
        assert "Sweep aggregate (exact): 8 rows over 2 queries" in out
        assert "priced 8 cells" in out


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-v"])
