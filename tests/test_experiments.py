"""Integration tests: every experiment module reproduces its paper-shape.

These run on a tiny suite (subset of JOB queries, tiny database) so they
finish quickly; the benchmark harness regenerates the full-size versions.
Each test asserts the *qualitative* finding of the corresponding table or
figure — the invariants listed in DESIGN.md §4.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentSuite
from repro.experiments import (
    ablation,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table1,
    table2,
    table3,
)
from repro.experiments.harness import ESTIMATOR_ORDER
from repro.physical import IndexConfig
from repro.plans.shapes import TreeShape


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(
        scale="tiny",
        query_names=[
            "1a", "2a", "4a", "5c", "6a", "13a", "13d", "16d", "17b",
            "25c", "32a",
        ],
    )


class TestTable1:
    def test_shape(self, suite):
        result = table1.run(suite)
        assert result.n_selections > 20
        for name in ESTIMATOR_ORDER:
            pct = result.percentiles[name]
            assert pct[50] < 3, f"{name}: median q-error must be near 1"
            assert pct[100] >= pct[95] >= pct[50]
        # sampling-based estimators have far smaller tails than the
        # histogram / magic-constant ones (the paper's key contrast)
        assert result.percentiles["DBMS A"][95] < result.percentiles["DBMS B"][95]
        assert result.percentiles["HyPer"][95] < result.percentiles["DBMS C"][95]
        assert "Table 1" in result.render()


class TestFig3:
    def test_error_growth_and_underestimation(self, suite):
        result = fig3.run(suite, max_subexpr_size=5)
        pg = result.percentiles["PostgreSQL"]
        # spread (p95/p5) grows with the join count
        spread = {
            j: np.log10(max(pg[j][95], 1e-12) / max(pg[j][5], 1e-12))
            for j in pg
        }
        assert spread[3] > spread[1]
        # medians drift into underestimation territory
        assert pg[3][50] < pg[0][50]
        assert pg[3][50] < 0.9
        # DBMS A analogue keeps medians closest to 1 at high join counts
        damped_median = result.percentiles["DBMS A"][3][50]
        assert abs(np.log10(damped_median)) < abs(np.log10(pg[3][50]))
        # DBMS B analogue underestimates hardest
        assert result.percentiles["DBMS B"][3][50] <= pg[3][50] * 1.01
        # the fraction of >=10x misestimates grows with joins
        wrong = result.wrong_10x["PostgreSQL"]
        assert wrong[3] >= wrong[1]
        assert "Figure 3" in result.render()


class TestFig4:
    def test_tpch_easier_than_job(self, suite):
        result = fig4.run(suite, tpch_scale="tiny", max_subexpr_size=6)
        job_spread = result.spread(fig4.JOB_FIG4)
        tpch_spread = result.spread(fig4.TPCH_FIG4)
        assert tpch_spread < 1.0, "TPC-H estimates must stay tight"
        assert job_spread > 2.0, "JOB estimates must blow up"
        assert "Figure 4" in result.render()


class TestFig5:
    def test_true_distincts_worsen_underestimation(self, suite):
        result = fig5.run(suite, max_subexpr_size=5)
        top = max(result.percentiles["default"])
        for joins in range(2, top + 1):
            d = result.median_at("default", joins)
            e = result.median_at("true-distinct", joins)
            assert e <= d * 1.05, (
                "exact distinct counts must not raise the medians"
            )
        assert "Figure 5" in result.render()


class TestFig6:
    def test_engine_ablation(self, suite):
        result = fig6.run_engine_ablation(suite, work_budget=2e6)
        default = result.distributions["default"]
        no_nlj = result.distributions["no-nlj"]
        rehash = result.distributions["no-nlj+rehash"]
        # disabling NLJ removes the timeouts (paper Figure 6b)
        assert no_nlj.timeouts <= default.timeouts
        assert rehash.timeouts == 0
        # the >=10x tail shrinks monotonically across the scenarios
        assert no_nlj.fraction_at_least(10) <= default.fraction_at_least(10)
        assert rehash.fraction_at_least(10) <= no_nlj.fraction_at_least(10)
        assert "Figure 6" in result.render()

    def test_injection_table(self, suite):
        result = fig6.run_injection(suite, work_budget=2e6)
        assert set(result.distributions) == set(ESTIMATOR_ORDER)
        for dist in result.distributions.values():
            assert len(dist.slowdowns) == len(suite.queries)
            assert all(s > 0 for s in dist.slowdowns)
        assert "4.1" in result.render()


class TestFig7:
    def test_fk_widens_tail(self, suite):
        result = fig7.run(suite)
        pk = result.by_config[IndexConfig.PK]
        fk = result.by_config[IndexConfig.PK_FK]
        assert fk.fraction_at_least(2.0) >= pk.fraction_at_least(2.0), (
            "more indexes => harder optimization problem (Figure 7)"
        )
        assert "Figure 7" in result.render()


class TestFig8:
    def test_true_cards_tighten_costs(self, suite):
        result = fig8.run(suite)
        for model in fig8.COST_MODELS:
            est = result.panels[(model, "PostgreSQL")]
            true = result.panels[(model, "true")]
            assert true.correlation > est.correlation, model
            assert true.correlation > 0.5, model
        # cardinality quality dwarfs cost model choice: the worst
        # true-card panel still beats the best estimate panel
        worst_true = min(
            result.panels[(m, "true")].correlation for m in fig8.COST_MODELS
        )
        best_est = max(
            result.panels[(m, "PostgreSQL")].correlation
            for m in fig8.COST_MODELS
        )
        assert worst_true > best_est
        assert "Figure 8" in result.render()


class TestFig9:
    def test_plan_space_shape(self, suite):
        result = fig9.run(suite, query_names=["6a", "13a", "25c"], n_plans=80)
        for by_config in result.normalized_costs.values():
            for costs in by_config.values():
                assert np.all(costs > 0)
                assert costs.max() / costs.min() > 1.5, (
                    "join order must matter by orders of magnitude"
                )
        # FK indexes make good plans rarer than having no indexes
        assert (
            result.fraction_within_1_5[IndexConfig.PK_FK]
            <= result.fraction_within_1_5[IndexConfig.NONE] + 0.05
        )
        assert "Figure 9" in result.render()


class TestTable2:
    def test_shape_ordering(self, suite):
        result = table2.run(suite)
        for config in (IndexConfig.PK, IndexConfig.PK_FK):
            zz = result.percentile(config, TreeShape.ZIG_ZAG, 50)
            ld = result.percentile(config, TreeShape.LEFT_DEEP, 50)
            rd = result.percentile(config, TreeShape.RIGHT_DEEP, 50)
            assert zz >= 1.0 - 1e-9
            assert zz <= ld + 1e-9, "zig-zag supersets left-deep"
            assert rd >= ld - 1e-9, "right-deep worst (paper Table 2)"
        # the right-deep penalty grows with FK indexes
        assert result.percentile(
            IndexConfig.PK_FK, TreeShape.RIGHT_DEEP, 95
        ) >= result.percentile(IndexConfig.PK, TreeShape.RIGHT_DEEP, 95) - 1e-9
        assert "Table 2" in result.render()


class TestTable3:
    def test_dp_beats_heuristics(self, suite):
        result = table3.run(suite, quickpick_plans=100)
        for config in (IndexConfig.PK, IndexConfig.PK_FK):
            dp_med = result.percentile(config, "true", "Dynamic Programming", 50)
            assert dp_med == pytest.approx(1.0)
            for heuristic in ("Quickpick-1000", "Greedy Operator Ordering"):
                assert result.percentile(config, "true", heuristic, 50) >= 1.0
                # with truth, DP is never beaten at the max either
                assert result.percentile(
                    config, "true", heuristic, 100
                ) >= result.percentile(
                    config, "true", "Dynamic Programming", 100
                ) - 1e-9
        # estimation-induced loss exceeds heuristic-induced loss (paper §6.3)
        est_loss = result.percentile(
            IndexConfig.PK_FK, "PostgreSQL", "Dynamic Programming", 50
        )
        heur_loss = result.percentile(
            IndexConfig.PK_FK, "true", "Greedy Operator Ordering", 50
        )
        assert est_loss >= heur_loss - 1e-9
        assert "Table 3" in result.render()


class TestAblations:
    def test_quickpick_sweep_monotone(self, suite):
        result = ablation.quickpick_sample_sweep(
            suite, sample_sizes=(5, 50), seed=1
        )
        med5, _ = result.stats[5]
        med50, _ = result.stats[50]
        assert med50 <= med5 + 1e-9
        assert "Quickpick" in result.render()

    def test_cmm_sweep_default_is_reference(self, suite):
        result = ablation.cmm_parameter_sweep(
            suite, taus=(0.2,), lams=(2.0,),
        )
        assert result.relative_cost[(0.2, 2.0)] == pytest.approx(1.0)

    def test_error_scaling_monotone_tail(self, suite):
        result = ablation.error_scaling(suite, factors=(1.0, 1000.0))
        assert result.frac_slow[1.0] <= result.frac_slow[1000.0] + 0.05
        assert "error" in result.render().lower()

    def test_hedging_tail_shrinks(self, suite):
        result = ablation.hedging(suite, factors=(1.0, 4.0))
        assert result.stats[4.0][2] <= result.stats[1.0][2] + 1e-9
        assert "hedged" in result.render().lower() or "pessimistic" in (
            result.render().lower()
        )

    def test_join_sampling_beats_synopses(self, suite):
        result = ablation.join_sampling_comparison(
            suite, max_subexpr_size=4
        )
        assert result.within_2x["join-sampling"] >= (
            result.within_2x["PostgreSQL"] - 0.05
        )
        assert "join-sample" in result.render()

    def test_correlation_sweep_runs(self):
        result = ablation.correlation_sweep(
            ["13d"], correlations=(0.0, 0.8), scale="tiny",
            max_subexpr_size=4,
        )
        assert set(result.median_ratio) == {0.0, 0.8}
        # correlated data must be underestimated at least as badly
        top = max(result.median_ratio[0.8])
        assert (
            result.median_ratio[0.8][top]
            <= result.median_ratio[0.0][top] * 1.5
        )
        assert "correlation" in result.render()
