"""Differential harness: truth oracle vs brute force on random schemas.

Each case builds a *randomized* small database (3–6 relations, seeded) —
random row counts, random key domains with dangling references and NULLs,
a random spanning-tree join graph with optional extra n:m edges, random
base selections — and counts every connected subexpression three ways:

1. the production oracle's sequential ``compute_all`` (compressed
   bottom-up materialisation over the explicit plan),
2. the level-parallel ``compute_all`` (subset sharding across a process
   pool), and
3. an independent brute force that enumerates connected subsets with its
   own adjacency walk and joins with dense numpy broadcasting.

All three must agree exactly — on the *set* of connected subsets and on
every count.  Any divergence pins a bug in the plan construction, the
expansion-parent machinery, key compression, NULL handling, or the
parallel executor's merge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cardinality import TrueCardinalities
from repro.catalog.column import NULL_INT, Column
from repro.catalog.schema import Database
from repro.catalog.table import Table
from repro.query.predicates import Comparison
from repro.query.query import JoinEdge, Query, Relation

CASE_SEEDS = list(range(10))


# --------------------------------------------------------------------- #
# random case generation
# --------------------------------------------------------------------- #


def _random_case(seed: int, max_rel: int = 7) -> tuple[Database, Query]:
    """A seeded random database + SPJ query over 3 to ``max_rel - 1``
    relations (the default reproduces the original 3–6 relation draws
    exactly; the kernel-parity tests widen to 3–8)."""
    rng = np.random.default_rng(1_000_003 * (seed + 1))
    n_rel = int(rng.integers(3, max_rel))
    db = Database(f"rand{seed}")
    n_rows = [int(rng.integers(8, 36)) for _ in range(n_rel)]
    # every relation i > 0 references one earlier relation (spanning tree)
    ref_of = [None] + [int(rng.integers(0, i)) for i in range(1, n_rel)]
    for i in range(n_rel):
        columns = [
            Column("id", np.arange(1, n_rows[i] + 1)),
            Column("val", rng.integers(0, 6, size=n_rows[i])),
        ]
        if ref_of[i] is not None:
            # dangling references beyond the target's id range are legal
            fk = rng.integers(1, n_rows[ref_of[i]] + 4, size=n_rows[i])
            fk[rng.random(n_rows[i]) < 0.12] = NULL_INT
            columns.append(Column("ref", fk))
        db.add_table(Table(f"t{i}", columns, primary_key="id"))

    relations = [Relation(f"r{i}", f"t{i}") for i in range(n_rel)]
    joins = [
        JoinEdge(f"r{i}", "ref", f"r{ref_of[i]}", "id", "pk_fk",
                 pk_side=f"r{ref_of[i]}")
        for i in range(1, n_rel)
    ]
    # optionally one extra n:m edge between two fk columns, forming a cycle
    fk_holders = [i for i in range(1, n_rel)]
    if len(fk_holders) >= 2 and rng.random() < 0.6:
        a, b = sorted(rng.choice(fk_holders, size=2, replace=False))
        if a != b:
            joins.append(JoinEdge(f"r{a}", "ref", f"r{b}", "ref", "fk_fk"))

    selections = {}
    ops = ("=", "<", ">", "!=")
    for i in range(n_rel):
        if rng.random() < 0.45:
            op = ops[int(rng.integers(0, len(ops)))]
            selections[f"r{i}"] = Comparison("val", op, int(rng.integers(0, 6)))

    return db, Query(f"rand{seed}", relations, selections, joins)


# --------------------------------------------------------------------- #
# independent brute force
# --------------------------------------------------------------------- #


def _filtered_ids(db: Database, query: Query) -> dict[str, np.ndarray]:
    ids = {}
    for rel in query.relations:
        table = db.table(rel.table)
        pred = query.selections.get(rel.alias)
        if pred is None:
            ids[rel.alias] = np.arange(table.n_rows, dtype=np.int64)
        else:
            ids[rel.alias] = np.nonzero(pred.evaluate(table))[0].astype(np.int64)
    return ids


def _connected_masks(query: Query) -> list[int]:
    """All connected alias subsets, via an adjacency walk of our own."""
    n = len(query.relations)
    adjacency = [0] * n
    index = {rel.alias: i for i, rel in enumerate(query.relations)}
    for edge in query.joins:
        a, b = (index[x] for x in edge.aliases())
        adjacency[a] |= 1 << b
        adjacency[b] |= 1 << a
    masks = []
    for mask in range(1, 1 << n):
        frontier = mask & -mask
        seen = frontier
        while frontier:
            grow = 0
            bits = frontier
            while bits:
                bit = bits & -bits
                grow |= adjacency[bit.bit_length() - 1] & mask & ~seen
                bits ^= bit
            seen |= grow
            frontier = grow
        if seen == mask:
            masks.append(mask)
    return masks


def _brute_count(db: Database, query: Query, mask: int,
                 filtered: dict[str, np.ndarray]) -> int:
    """Join the subset with dense O(m·r) broadcasting, NULLs excluded."""
    aliases = [rel.alias for rel in query.relations
               if query.alias_bit(rel.alias) & mask]
    tables = {rel.alias: db.table(rel.table) for rel in query.relations}
    included = [aliases[0]]
    tuples = {aliases[0]: filtered[aliases[0]]}
    remaining = aliases[1:]
    while remaining:
        nxt = next(
            a for a in remaining
            if any(
                set(e.aliases()) == {a, b}
                for e in query.joins for b in included
            )
        )
        edges = [
            e for e in query.joins
            if nxt in e.aliases() and e.other(nxt)[0] in included
        ]
        new_ids = filtered[nxt]
        m = len(tuples[included[0]])
        ok = np.ones((m, len(new_ids)), dtype=bool)
        for edge in edges:
            other_alias, other_col = edge.other(nxt)
            _, new_col = edge.side(nxt)
            left = tables[other_alias].column(other_col).values[
                tuples[other_alias]
            ]
            right = tables[nxt].column(new_col).values[new_ids]
            ok &= (
                (left[:, None] == right[None, :])
                & (left[:, None] != NULL_INT)
                & (right[None, :] != NULL_INT)
            )
        li, ri = np.nonzero(ok)
        tuples = {a: ids[li] for a, ids in tuples.items()}
        tuples[nxt] = new_ids[ri]
        included.append(nxt)
        remaining.remove(nxt)
    return len(tuples[included[0]])


def _brute_force_counts(db: Database, query: Query) -> dict[int, int]:
    filtered = _filtered_ids(db, query)
    return {
        mask: _brute_count(db, query, mask, filtered)
        for mask in _connected_masks(query)
    }


# --------------------------------------------------------------------- #
# the differential assertions
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", CASE_SEEDS)
def test_oracle_matches_brute_force(seed):
    db, query = _random_case(seed)
    oracle = TrueCardinalities(db).compute_all(query)
    brute = _brute_force_counts(db, query)
    # identical subset *sets* (connectivity agreement) and counts
    assert oracle == brute


@pytest.mark.parametrize("seed", CASE_SEEDS[:5])
def test_level_parallel_bit_identical_to_sequential(seed):
    db, query = _random_case(seed)
    sequential = TrueCardinalities(db).compute_all(query)
    parallel_oracle = TrueCardinalities(db)
    try:
        parallel = parallel_oracle.compute_all(query, processes=2)
    finally:
        parallel_oracle.close()
    assert parallel == sequential


def test_level_parallel_propagates_max_rows_guard():
    """The safety valve fires across the process boundary too: a worker
    exceeding ``max_rows`` surfaces as the same ``EstimationError`` the
    sequential oracle raises."""
    from repro.errors import EstimationError

    db, query = _random_case(0)
    counts = TrueCardinalities(db).compute_all(query)
    # the guard fires on join outputs, so cap below the largest composite
    from repro.util.bitset import popcount

    largest_join = max(
        n for s, n in counts.items() if popcount(s) > 1
    )
    assert largest_join > 1
    oracle = TrueCardinalities(db, max_rows=largest_join - 1)
    try:
        with pytest.raises(EstimationError, match="max_rows"):
            oracle.compute_all(query, processes=2)
    finally:
        oracle.close()


class TestKernelBackendParity:
    """The numpy oracle kernels must be bit-identical to the python path.

    Counts are exact integers and unfiltered counts promote through the
    same ``max_rows`` guard, so every observable — the subset set, every
    count, every unfiltered count, and the guard's error message — must
    agree exactly across ``REPRO_KERNELS=python|numpy``.
    """

    @pytest.mark.parametrize("seed", CASE_SEEDS)
    def test_counts_identical(self, seed):
        from repro.kernels import use_backend

        db, query = _random_case(seed, max_rel=9)  # 3–8 relations
        with use_backend("python"):
            reference = TrueCardinalities(db).compute_all(query)
        with use_backend("numpy"):
            vectorized = TrueCardinalities(db).compute_all(query)
        assert vectorized == reference

    @staticmethod
    def _all_unfiltered(db, query, backend):
        """Every (subset, selected alias) unfiltered cardinality, with
        guard errors captured as comparable strings."""
        from repro.errors import EstimationError
        from repro.kernels import use_backend
        from repro.util.bitset import popcount

        with use_backend(backend):
            oracle = TrueCardinalities(db)
            counts = oracle.compute_all(
                query, warm_unfiltered=(backend == "numpy")
            )
            out = {}
            for subset in counts:
                if popcount(subset) < 2:
                    continue
                for alias in query.selections:
                    if not (query.alias_bit(alias) & subset):
                        continue
                    try:
                        value = oracle.cardinality(
                            query, subset, unfiltered_alias=alias
                        )
                        out[(subset, alias)] = value.hex()
                    except EstimationError as exc:
                        out[(subset, alias)] = f"error: {exc}"
        return counts, out

    @pytest.mark.parametrize("seed", CASE_SEEDS[:6])
    def test_unfiltered_counts_identical(self, seed):
        """The warm side cache (numpy) must promote exactly the values
        the python path computes on demand."""
        db, query = _random_case(seed, max_rel=9)
        if not query.selections:
            pytest.skip("case drew no base selections")
        py_counts, py_unf = self._all_unfiltered(db, query, "python")
        np_counts, np_unf = self._all_unfiltered(db, query, "numpy")
        assert np_counts == py_counts
        assert np_unf == py_unf

    @pytest.mark.parametrize("seed", [0, 4])
    def test_max_rows_guard_message_identical(self, seed):
        """The first guard violation (and its message) must be the same
        subset under both backends — level order is part of the contract."""
        from repro.errors import EstimationError
        from repro.kernels import use_backend
        from repro.util.bitset import popcount

        db, query = _random_case(seed)
        full = TrueCardinalities(db).compute_all(query)
        cap = max(n for s, n in full.items() if popcount(s) > 1) - 1
        messages = {}
        for backend in ("python", "numpy"):
            with use_backend(backend):
                with pytest.raises(EstimationError) as excinfo:
                    TrueCardinalities(db, max_rows=cap).compute_all(query)
                messages[backend] = str(excinfo.value)
        assert messages["python"] == messages["numpy"]


def test_level_parallel_capped_then_full_identical():
    """A truncated parallel run followed by a full one must converge to
    exactly the sequential full enumeration (no truncated cache reuse)."""
    db, query = _random_case(3)
    sequential = TrueCardinalities(db).compute_all(query)
    oracle = TrueCardinalities(db)
    try:
        capped = oracle.compute_all(query, max_size=2, processes=2)
        assert set(capped) < set(sequential)
        full = oracle.compute_all(query, processes=2)
    finally:
        oracle.close()
    assert full == sequential
