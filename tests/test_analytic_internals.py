"""Analytic estimator internals: spanning-edge deduplication, selectivity
module details, and the runtime-runner helper."""

import pytest

from repro.cardinality import PostgresEstimator
from repro.cardinality.selectivity import (
    LIKE_MAGIC_SELECTIVITY,
    stats_selectivity,
)
from repro.experiments import ExperimentSuite
from repro.experiments.runtime import SCENARIOS, RuntimeRunner
from repro.physical import IndexConfig
from repro.query.predicates import (
    And,
    Comparison,
    InList,
    IsNotNull,
    IsNull,
    Like,
    Not,
    Or,
)
from repro.query.query import JoinEdge, Query, Relation


class TestSpanningEdges:
    def _query_with_cycle(self):
        """t - mc, t - mi, mc - mi (transitive): one edge is redundant."""
        return Query(
            "cyc",
            [
                Relation("t", "title"),
                Relation("mc", "movie_companies"),
                Relation("mi", "movie_info"),
            ],
            {},
            [
                JoinEdge("mc", "movie_id", "t", "id", "pk_fk", pk_side="t"),
                JoinEdge("mi", "movie_id", "t", "id", "pk_fk", pk_side="t"),
                JoinEdge("mc", "movie_id", "mi", "movie_id", "fk_fk"),
            ],
        )

    def test_redundant_edge_dropped(self, imdb_tiny):
        est = PostgresEstimator(imdb_tiny)
        q = self._query_with_cycle()
        from repro.query.join_graph import JoinGraph

        graph = JoinGraph(q)
        kept = est._spanning_edges(q, graph.edges_within(q.all_mask))
        assert len(kept) == 2
        assert all(e.kind == "pk_fk" for e in kept), (
            "PK-FK edges are preferred over the transitive FK-FK edge"
        )

    def test_estimate_equals_acyclic_equivalent(self, imdb_tiny):
        """The cyclic query must be estimated like its acyclic spanning
        version — PostgreSQL's equivalence classes do the same."""
        est = PostgresEstimator(imdb_tiny)
        cyclic = self._query_with_cycle()
        acyclic = Query(
            "acyc",
            [r for r in cyclic.relations],
            {},
            cyclic.joins[:2],
        )
        assert est.cardinality(cyclic, 0b111) == pytest.approx(
            est.cardinality(acyclic, 0b111)
        )

    def test_genuinely_different_columns_kept(self, imdb_tiny):
        """Two edges on *different* column pairs are both selective."""
        q = Query(
            "two",
            [Relation("f1", "cast_info"), Relation("f2", "cast_info")],
            {},
            [
                JoinEdge("f1", "movie_id", "f2", "movie_id", "fk_fk"),
                JoinEdge("f1", "person_id", "f2", "person_id", "fk_fk"),
            ],
        )
        est = PostgresEstimator(imdb_tiny)
        from repro.query.join_graph import JoinGraph

        kept = est._spanning_edges(q, JoinGraph(q).edges_within(0b11))
        assert len(kept) == 2


class TestSelectivityModule:
    def test_like_magic_constant(self, imdb_tiny):
        sel = stats_selectivity(imdb_tiny, "name", Like("name", "%zzz%"))
        assert sel == LIKE_MAGIC_SELECTIVITY

    def test_not_like_complement(self, imdb_tiny):
        sel = stats_selectivity(
            imdb_tiny, "name", Like("name", "%zzz%", negate=True)
        )
        assert sel == pytest.approx(1.0 - LIKE_MAGIC_SELECTIVITY)

    def test_and_multiplies(self, imdb_tiny):
        a = Comparison("production_year", ">", 2000)
        b = Comparison("kind_id", "=", 1)
        sel_a = stats_selectivity(imdb_tiny, "title", a)
        sel_b = stats_selectivity(imdb_tiny, "title", b)
        sel_ab = stats_selectivity(imdb_tiny, "title", And([a, b]))
        assert sel_ab == pytest.approx(sel_a * sel_b, rel=1e-6)

    def test_or_inclusion_exclusion(self, imdb_tiny):
        a = Comparison("kind_id", "=", 1)
        b = Comparison("kind_id", "=", 2)
        sel_a = stats_selectivity(imdb_tiny, "title", a)
        sel_b = stats_selectivity(imdb_tiny, "title", b)
        sel_or = stats_selectivity(imdb_tiny, "title", Or([a, b]))
        assert sel_or == pytest.approx(sel_a + sel_b - sel_a * sel_b, rel=1e-6)

    def test_not_complements(self, imdb_tiny):
        a = Comparison("kind_id", "=", 1)
        sel = stats_selectivity(imdb_tiny, "title", a)
        sel_not = stats_selectivity(imdb_tiny, "title", Not(a))
        assert sel_not == pytest.approx(1.0 - sel, rel=1e-6)

    def test_null_tests(self, imdb_tiny):
        sel_null = stats_selectivity(
            imdb_tiny, "title", IsNull("production_year")
        )
        sel_not_null = stats_selectivity(
            imdb_tiny, "title", IsNotNull("production_year")
        )
        assert sel_null == pytest.approx(1.0 - sel_not_null)
        assert 0 < sel_null < 0.2  # generator uses ~3% null years

    def test_in_list_sums(self, imdb_tiny):
        sel = stats_selectivity(
            imdb_tiny, "kind_type", InList("kind", ["movie", "episode"])
        )
        one = stats_selectivity(
            imdb_tiny, "kind_type", Comparison("kind", "=", "movie")
        )
        assert sel >= one

    def test_absent_string_eq_near_zero(self, imdb_tiny):
        sel = stats_selectivity(
            imdb_tiny, "kind_type", Comparison("kind", "=", "hologram")
        )
        assert sel <= 1e-6

    def test_clamped_to_unit_interval(self, imdb_tiny):
        big_or = Or([
            Comparison("kind_id", "!=", 99),
            Comparison("production_year", ">", 0),
        ])
        assert stats_selectivity(imdb_tiny, "title", big_or) <= 1.0


class TestRuntimeRunner:
    @pytest.fixture(scope="class")
    def suite(self):
        return ExperimentSuite(scale="tiny", query_names=["1a", "6a", "13d"])

    def test_optimal_runtime_cached(self, suite):
        runner = RuntimeRunner(suite)
        scenario = SCENARIOS["no-nlj+rehash"]
        q = suite.queries[0]
        first = runner.optimal_runtime(q, IndexConfig.PK, scenario)
        second = runner.optimal_runtime(q, IndexConfig.PK, scenario)
        assert first == second > 0

    def test_truth_slowdown_is_unity(self, suite):
        """Injecting the truth itself must give slowdown 1.0 exactly."""
        runner = RuntimeRunner(suite)
        scenario = SCENARIOS["no-nlj+rehash"]
        for q in suite.queries:
            ratio, timed_out = runner.slowdown(
                q, suite.true_card(q), IndexConfig.PK, scenario
            )
            assert ratio == pytest.approx(1.0)
            assert not timed_out

    def test_scenarios_registry(self):
        assert SCENARIOS["default"].allow_nlj
        assert not SCENARIOS["default"].rehash
        assert not SCENARIOS["no-nlj"].allow_nlj
        assert SCENARIOS["no-nlj+rehash"].rehash

    def test_work_budget_override(self, suite):
        runner = RuntimeRunner(suite, work_budget=10.0)
        scenario = SCENARIOS["no-nlj+rehash"]
        q = suite.queries[0]
        plan = runner.plan_for(
            q, suite.true_card(q), IndexConfig.PK, scenario
        )
        ms, timed_out = runner.execute_ms(q, plan, IndexConfig.PK, scenario)
        assert timed_out
        assert ms == pytest.approx(10.0 / 20_000.0)
