"""Workload profiling utilities."""

import pytest

from repro.workloads import job_queries
from repro.workloads.analysis import profile_workload


def test_job_profile_matches_paper_shape():
    profile = profile_workload(job_queries())
    assert profile.n_queries == 113
    assert 3 <= min(profile.join_counts)
    assert max(profile.join_counts) <= 13
    assert 6.0 <= profile.mean_joins <= 9.0
    # both solid (PK-FK) and dotted (FK-FK) edges, like Figure 2
    assert profile.edge_kinds["pk_fk"] > profile.edge_kinds["fk_fk"] > 0
    # transitive predicates make a meaningful share of graphs cyclic
    assert profile.cyclic_queries >= 30
    # the predicate mix covers the kinds Section 2.2 mentions
    for kind in ("equality", "range", "like", "in-list", "disjunction"):
        assert profile.predicate_kinds[kind] > 0, kind


def test_profile_render():
    profile = profile_workload(job_queries()[:10])
    out = profile.render()
    assert "Workload profile" in out
    assert "predicate kind" in out


def test_empty_workload_rejected():
    with pytest.raises(ValueError):
        profile_workload([])


def test_search_space_recorded():
    profile = profile_workload(job_queries()[:5])
    assert len(profile.search_space) == 5
    assert all(s > 0 for s in profile.search_space)
