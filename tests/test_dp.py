"""Dynamic-programming enumeration: optimality, shapes, completeness."""

import itertools

import pytest

from repro.cardinality import PostgresEstimator, TrueCardinalities
from repro.cost import SimpleCostModel
from repro.cost.base import plan_cost
from repro.enumeration import DPEnumerator, QueryContext
from repro.enumeration.candidates import candidate_joins
from repro.errors import EnumerationError
from repro.physical import IndexConfig, PhysicalDesign
from repro.plans import JoinNode, TreeShape, classify_shape, satisfies_shape
from repro.plans.plan import PlanNode, ScanNode
from repro.query.predicates import Comparison
from repro.query.query import JoinEdge, Query, Relation
from repro.workloads import job_query


def _toy_query(selections=None):
    return Query(
        "toy",
        [Relation("f", "fact"), Relation("a", "dim_a"), Relation("b", "dim_b")],
        selections or {},
        [
            JoinEdge("f", "a_id", "a", "id", "pk_fk", pk_side="a"),
            JoinEdge("f", "b_id", "b", "id", "pk_fk", pk_side="b"),
        ],
    )


def _brute_force_optimum(query, card, cost_model, design, shape=None):
    """Enumerate EVERY valid plan recursively; return min cost."""
    from repro.query.join_graph import JoinGraph

    graph = JoinGraph(query)

    def plans_for(subset) -> list[PlanNode]:
        indices = [i for i in range(query.n_relations) if subset & (1 << i)]
        if len(indices) == 1:
            rel = query.relation_at(indices[0])
            return [ScanNode(indices[0], rel.alias, rel.table)]
        out = []
        sub = (subset - 1) & subset
        seen = set()
        while sub:
            other = subset ^ sub
            if sub not in seen and other:
                seen.add(sub)
                seen.add(other)
                if (
                    graph.is_connected(sub)
                    and graph.is_connected(other)
                    and graph.connects(sub, other)
                ):
                    edges = graph.edges_between(sub, other)
                    for left in plans_for(sub):
                        for right in plans_for(other):
                            for a, b in ((left, right), (right, left)):
                                out.extend(
                                    candidate_joins(query, a, b, edges, design)
                                )
            sub = (sub - 1) & subset
        return out

    best = float("inf")
    for plan in plans_for(query.all_mask):
        if shape is not None and not satisfies_shape(plan, shape):
            continue
        best = min(best, plan_cost(plan, cost_model, card))
    return best


class TestDPOptimality:
    @pytest.mark.parametrize("config", [IndexConfig.NONE, IndexConfig.PK_FK])
    def test_matches_brute_force_toy(self, toy_db, config):
        q = _toy_query({"a": Comparison("color", "=", "blue")})
        design = PhysicalDesign(toy_db, config)
        model = SimpleCostModel(toy_db)
        card = TrueCardinalities(toy_db).bind(q)
        plan, cost = DPEnumerator(model, design).optimize(QueryContext(q), card)
        assert cost == pytest.approx(plan_cost(plan, model, card))
        brute = _brute_force_optimum(q, card, model, design)
        assert cost == pytest.approx(brute)

    def test_matches_brute_force_on_job_query(self, imdb_tiny):
        q = job_query("3a")  # 4 relations: tractable brute force
        design = PhysicalDesign(imdb_tiny, IndexConfig.PK_FK)
        model = SimpleCostModel(imdb_tiny)
        card = PostgresEstimator(imdb_tiny).bind(q)
        _, cost = DPEnumerator(model, design).optimize(QueryContext(q), card)
        brute = _brute_force_optimum(q, card, model, design)
        assert cost == pytest.approx(brute)

    @pytest.mark.parametrize(
        "shape",
        [TreeShape.LEFT_DEEP, TreeShape.RIGHT_DEEP, TreeShape.ZIG_ZAG],
    )
    def test_shape_restricted_matches_brute_force(self, imdb_tiny, shape):
        q = job_query("3a")
        design = PhysicalDesign(imdb_tiny, IndexConfig.PK)
        model = SimpleCostModel(imdb_tiny)
        card = PostgresEstimator(imdb_tiny).bind(q)
        plan, cost = DPEnumerator(model, design, shape=shape).optimize(
            QueryContext(q), card
        )
        assert satisfies_shape(plan, shape)
        brute = _brute_force_optimum(q, card, model, design, shape=shape)
        assert cost == pytest.approx(brute)


class TestDPProperties:
    def test_plan_covers_all_relations(self, suite_tiny):
        model = SimpleCostModel(suite_tiny.db)
        design = suite_tiny.design(IndexConfig.PK_FK)
        dp = DPEnumerator(model, design)
        for query in suite_tiny.queries:
            card = suite_tiny.card("PostgreSQL", query)
            plan, _ = dp.optimize(suite_tiny.context(query), card)
            assert plan.subset == query.all_mask

    def test_shape_restriction_never_cheaper(self, suite_tiny):
        model = SimpleCostModel(suite_tiny.db)
        design = suite_tiny.design(IndexConfig.PK_FK)
        bushy = DPEnumerator(model, design)
        for shape in (TreeShape.LEFT_DEEP, TreeShape.RIGHT_DEEP,
                      TreeShape.ZIG_ZAG):
            restricted = DPEnumerator(model, design, shape=shape)
            for query in suite_tiny.queries[:4]:
                ctx = suite_tiny.context(query)
                card = suite_tiny.true_card(query)
                _, bushy_cost = bushy.optimize(ctx, card)
                plan, cost = restricted.optimize(ctx, card)
                assert satisfies_shape(plan, shape), query.name
                assert cost >= bushy_cost - 1e-9

    def test_estimates_annotated(self, imdb_tiny):
        q = job_query("1a")
        model = SimpleCostModel(imdb_tiny)
        design = PhysicalDesign(imdb_tiny, IndexConfig.PK)
        card = PostgresEstimator(imdb_tiny).bind(q)
        plan, _ = DPEnumerator(model, design).optimize(QueryContext(q), card)
        for node in plan.iter_nodes():
            assert node.est_rows == node.est_rows
            assert node.est_rows >= 1.0

    def test_disconnected_graph_raises(self, toy_db):
        q = Query(
            "disc",
            [Relation("f", "fact"), Relation("a", "dim_a"),
             Relation("b", "dim_b")],
            {},
            [JoinEdge("f", "a_id", "a", "id", "pk_fk", pk_side="a")],
        )
        model = SimpleCostModel(toy_db)
        design = PhysicalDesign(toy_db, IndexConfig.PK)
        card = PostgresEstimator(toy_db).bind(q)
        with pytest.raises(EnumerationError):
            DPEnumerator(model, design).optimize(QueryContext(q), card)

    def test_no_cross_products(self, suite_tiny):
        model = SimpleCostModel(suite_tiny.db)
        design = suite_tiny.design(IndexConfig.PK_FK)
        dp = DPEnumerator(model, design)
        for query in suite_tiny.queries[:6]:
            plan, _ = dp.optimize(
                suite_tiny.context(query), suite_tiny.card("PostgreSQL", query)
            )
            for node in plan.iter_nodes():
                if isinstance(node, JoinNode):
                    assert node.edges, "cross product found"

    def test_nlj_only_when_allowed(self, imdb_tiny):
        q = job_query("1a")
        model = SimpleCostModel(imdb_tiny)
        design = PhysicalDesign(imdb_tiny, IndexConfig.NONE)
        card = PostgresEstimator(imdb_tiny).bind(q)
        plan, _ = DPEnumerator(model, design, allow_nlj=False).optimize(
            QueryContext(q), card
        )
        algorithms = {
            n.algorithm for n in plan.iter_nodes() if isinstance(n, JoinNode)
        }
        assert "nlj" not in algorithms
        assert "inlj" not in algorithms  # no indexes in this design

    def test_kernels_arg_overrides_environment(self, toy_db):
        """An explicit ``DPEnumerator(kernels=...)`` wins over the env."""
        from repro.kernels import use_backend

        q = _toy_query()
        model = SimpleCostModel(toy_db)
        design = PhysicalDesign(toy_db, IndexConfig.PK_FK)
        card = TrueCardinalities(toy_db).bind(q)
        with use_backend("numpy"):
            dp = DPEnumerator(model, design, kernels="python")
            plan, cost = dp.optimize(QueryContext(q), card)
        reference, ref_cost = DPEnumerator(model, design).optimize(
            QueryContext(q), TrueCardinalities(toy_db).bind(q)
        )
        assert repr(plan) == repr(reference)
        assert cost.hex() == ref_cost.hex()

    def test_unknown_kernels_name_rejected(self, toy_db):
        model = SimpleCostModel(toy_db)
        design = PhysicalDesign(toy_db, IndexConfig.PK_FK)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            DPEnumerator(model, design, kernels="cuda")

    def test_recost_under_truth_not_below_true_optimum(self, imdb_tiny):
        """The paper's core recosting invariant: a plan chosen under
        estimates can never beat the true optimum when both are measured
        with true cardinalities."""
        q = job_query("13d")
        model = SimpleCostModel(imdb_tiny)
        design = PhysicalDesign(imdb_tiny, IndexConfig.PK_FK)
        dp = DPEnumerator(model, design)
        ctx = QueryContext(q)
        tcard = TrueCardinalities(imdb_tiny).bind(q)
        est_plan, _ = dp.optimize(ctx, PostgresEstimator(imdb_tiny).bind(q))
        _, true_optimal = dp.optimize(ctx, tcard)
        assert dp.recost(est_plan, tcard) >= true_optimal - 1e-9


class TestKernelBackendParity:
    """DP pricing is bit-identical across kernel backends: the chosen
    plan's repr and the cost float (compared via ``.hex()``) must agree
    exactly — ties included, which is what the rank-encoded winner
    selection in :mod:`repro.kernels.dp` guarantees."""

    @staticmethod
    def _optimize(db, query, backend, *, config=IndexConfig.PK_FK,
                  allow_nlj=True, shape=TreeShape.BUSHY, estimator=None):
        from repro.kernels import use_backend

        with use_backend(backend):
            model = SimpleCostModel(db)
            design = PhysicalDesign(db, config)
            card = (estimator(db) if estimator is not None
                    else TrueCardinalities(db)).bind(query)
            dp = DPEnumerator(
                model, design, allow_nlj=allow_nlj, shape=shape
            )
            plan, cost = dp.optimize(QueryContext(query), card)
        return repr(plan), cost.hex()

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize(
        "config", [IndexConfig.NONE, IndexConfig.PK_FK]
    )
    def test_random_schemas_identical(self, seed, config):
        from test_truth_differential import _random_case

        db, query = _random_case(seed, max_rel=9)  # 3–8 relations
        assert (
            self._optimize(db, query, "numpy", config=config)
            == self._optimize(db, query, "python", config=config)
        )

    @pytest.mark.parametrize("name", ["3a", "13d", "17b"])
    def test_job_queries_identical(self, imdb_tiny, name):
        q = job_query(name)
        assert (
            self._optimize(imdb_tiny, q, "numpy")
            == self._optimize(imdb_tiny, q, "python")
        )

    def test_estimated_cards_identical(self, imdb_tiny):
        """Parity holds for estimate-driven DP too (no truth oracle in
        the loop, so the batched unfiltered gathers hit the estimator)."""
        q = job_query("13d")
        assert (
            self._optimize(imdb_tiny, q, "numpy", estimator=PostgresEstimator)
            == self._optimize(imdb_tiny, q, "python",
                              estimator=PostgresEstimator)
        )

    @pytest.mark.parametrize(
        "shape", [TreeShape.LEFT_DEEP, TreeShape.ZIG_ZAG]
    )
    def test_shape_restricted_identical(self, imdb_tiny, shape):
        q = job_query("3a")
        assert (
            self._optimize(imdb_tiny, q, "numpy", shape=shape,
                           allow_nlj=False)
            == self._optimize(imdb_tiny, q, "python", shape=shape,
                              allow_nlj=False)
        )
