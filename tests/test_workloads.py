"""The JOB workload: 113 queries, 33 structures, paper-matching shape."""

import numpy as np
import pytest

from repro.query.join_graph import JoinGraph
from repro.workloads import (
    JOB_QUERIES,
    TPCH_QUERIES,
    job_queries,
    job_query,
    tpch_queries,
)


class TestJobShape:
    def test_113_queries(self):
        assert len(JOB_QUERIES) == 113

    def test_33_structures(self):
        structures = {name.rstrip("abcdef") for name in JOB_QUERIES}
        assert structures == {str(i) for i in range(1, 34)}

    def test_variants_per_structure_2_to_6(self):
        counts = {}
        for name in JOB_QUERIES:
            counts.setdefault(name.rstrip("abcdef"), 0)
            counts[name.rstrip("abcdef")] += 1
        assert all(2 <= c <= 6 for c in counts.values())

    def test_join_counts_in_paper_range(self):
        joins = [q.n_joins for q in job_queries()]
        assert min(joins) >= 3
        assert max(joins) <= 13
        assert 6.0 <= float(np.mean(joins)) <= 9.5, (
            "paper: between 3 and 16 joins, 8 on average"
        )

    def test_variants_share_structure(self):
        """Variants of one structure differ only in selections."""
        q13a, q13d = job_query("13a"), job_query("13d")
        assert [r.table for r in q13a.relations] == [
            r.table for r in q13d.relations
        ]
        assert len(q13a.joins) == len(q13d.joins)
        assert q13a.selections != q13d.selections

    def test_example_query_13d(self):
        """The paper's running example: US production companies with
        ratings and release dates over 9 relations."""
        q = job_query("13d")
        tables = {r.table for r in q.relations}
        assert tables == {
            "title", "movie_companies", "company_name", "company_type",
            "movie_info", "movie_info_idx", "info_type", "kind_type",
        }
        assert q.n_relations == 9  # info_type appears twice

    def test_queries_validate_against_imdb(self, imdb_tiny):
        for q in job_queries():
            q.validate_against(imdb_tiny)

    def test_join_graphs_connected(self):
        for q in job_queries():
            graph = JoinGraph(q)
            assert graph.is_connected(q.all_mask), q.name

    def test_fk_fk_dotted_edges_exist(self):
        """Figure 2 shows transitive n:m edges; the workload must contain
        them (they create the cyclic graphs and the estimator
        consistency artifacts)."""
        kinds = {e.kind for q in job_queries() for e in q.joins}
        assert kinds == {"pk_fk", "fk_fk"}

    def test_unknown_query_raises(self):
        with pytest.raises(KeyError):
            job_query("99z")

    def test_all_joins_are_surrogate_int_keys(self, imdb_tiny):
        for q in job_queries():
            for e in q.joins:
                for alias, col in (
                    (e.left_alias, e.left_column),
                    (e.right_alias, e.right_column),
                ):
                    table = imdb_tiny.table(q.relation_for(alias).table)
                    assert table.column(col).kind == "int", (q.name, col)


class TestTpchQueries:
    def test_three_queries(self):
        assert set(TPCH_QUERIES) == {"tpch5", "tpch8", "tpch10"}

    def test_validate_and_connected(self, tpch_tiny):
        for q in tpch_queries():
            q.validate_against(tpch_tiny)
            assert JoinGraph(q).is_connected(q.all_mask)

    def test_q8_has_two_nation_roles(self):
        q = TPCH_QUERIES["tpch8"]
        nation_aliases = [r.alias for r in q.relations if r.table == "nation"]
        assert len(nation_aliases) == 2
