"""Query model and join graph: validation, connectivity, edge lookup."""

import pytest

from repro.errors import QueryError
from repro.query.join_graph import JoinGraph
from repro.query.predicates import Comparison
from repro.query.query import JoinEdge, Query, Relation


def _chain_query(n=4):
    """r0 - r1 - r2 - ... - r{n-1} chain."""
    relations = [Relation(f"r{i}", f"t{i}") for i in range(n)]
    joins = [
        JoinEdge(f"r{i}", "id", f"r{i+1}", "fk", "pk_fk", pk_side=f"r{i}")
        for i in range(n - 1)
    ]
    return Query("chain", relations, {}, joins)


def _star_query(n_leaves=4):
    relations = [Relation("hub", "fact")] + [
        Relation(f"l{i}", f"dim{i}") for i in range(n_leaves)
    ]
    joins = [
        JoinEdge("hub", f"fk{i}", f"l{i}", "id", "pk_fk", pk_side=f"l{i}")
        for i in range(n_leaves)
    ]
    return Query("star", relations, {}, joins)


class TestQueryValidation:
    def test_duplicate_alias_rejected(self):
        with pytest.raises(QueryError):
            Query("q", [Relation("a", "t"), Relation("a", "t")])

    def test_selection_on_unknown_alias_rejected(self):
        with pytest.raises(QueryError):
            Query(
                "q",
                [Relation("a", "t")],
                {"b": Comparison("x", "=", 1)},
            )

    def test_join_on_unknown_alias_rejected(self):
        with pytest.raises(QueryError):
            Query(
                "q",
                [Relation("a", "t")],
                {},
                [JoinEdge("a", "x", "b", "y", "fk_fk")],
            )

    def test_edge_kind_validation(self):
        with pytest.raises(QueryError):
            JoinEdge("a", "x", "b", "y", "bogus")
        with pytest.raises(QueryError):
            JoinEdge("a", "x", "b", "y", "pk_fk", pk_side="c")

    def test_alias_bits(self):
        q = _chain_query(3)
        assert q.alias_bit("r0") == 1
        assert q.alias_bit("r2") == 4
        assert q.all_mask == 0b111
        with pytest.raises(QueryError):
            q.alias_bit("nope")

    def test_n_joins(self):
        assert _chain_query(5).n_joins == 4


class TestJoinEdge:
    def test_side_and_other(self):
        e = JoinEdge("a", "x", "b", "y", "fk_fk")
        assert e.side("a") == ("a", "x")
        assert e.other("a") == ("b", "y")
        assert e.side("b") == ("b", "y")
        assert e.other("b") == ("a", "x")
        with pytest.raises(QueryError):
            e.side("c")


class TestJoinGraph:
    def test_chain_connectivity(self):
        g = JoinGraph(_chain_query(4))
        assert g.is_connected(0b1111)
        assert g.is_connected(0b0011)
        assert not g.is_connected(0b1001)  # r0 and r3 not adjacent
        assert not g.is_connected(0)

    def test_star_connectivity(self):
        g = JoinGraph(_star_query(3))
        # any subset containing the hub (bit 0) is connected
        assert g.is_connected(0b1011)
        # two leaves without the hub are not
        assert not g.is_connected(0b0110)

    def test_neighbors(self):
        g = JoinGraph(_chain_query(4))
        assert g.neighbors(0b0001) == 0b0010
        assert g.neighbors(0b0010) == 0b0101
        assert g.neighbors(0b0110) == 0b1001

    def test_connects(self):
        g = JoinGraph(_chain_query(4))
        assert g.connects(0b0001, 0b0010)
        assert not g.connects(0b0001, 0b0100)

    def test_edges_between_and_within(self):
        q = _star_query(2)
        g = JoinGraph(q)
        hub, l0, l1 = 0b001, 0b010, 0b100
        assert len(g.edges_between(hub, l0)) == 1
        assert len(g.edges_between(l0, l1)) == 0
        assert len(g.edges_within(hub | l0 | l1)) == 2

    def test_multi_edges_preserved(self):
        q = Query(
            "q",
            [Relation("a", "t"), Relation("b", "u")],
            {},
            [
                JoinEdge("a", "x", "b", "y", "fk_fk"),
                JoinEdge("a", "z", "b", "w", "fk_fk"),
            ],
        )
        g = JoinGraph(q)
        assert len(g.edges_between(0b01, 0b10)) == 2

    def test_self_join_edge_rejected(self):
        q = Query(
            "q",
            [Relation("a", "t"), Relation("b", "u")],
            {},
            [JoinEdge("a", "x", "a", "y", "fk_fk")],
        )
        with pytest.raises(QueryError):
            JoinGraph(q)

    def test_degree(self):
        g = JoinGraph(_star_query(3))
        assert g.degree(0) == 3  # hub
        assert g.degree(1) == 1
