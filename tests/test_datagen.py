"""Synthetic data generators: schema, integrity, determinism, correlation."""

import numpy as np
import pytest

from repro.catalog.column import NULL_INT
from repro.datagen import generate_imdb, generate_tpch
from repro.datagen.distributions import (
    correlated_choice,
    heavy_tail_counts,
    pareto_popularity,
    sample_zipf,
    zipf_weights,
)

IMDB_TABLES = {
    "title", "kind_type", "info_type", "company_type", "role_type",
    "link_type", "comp_cast_type", "company_name", "name", "char_name",
    "keyword", "movie_companies", "movie_info", "movie_info_idx",
    "cast_info", "movie_keyword", "movie_link", "aka_name", "aka_title",
    "person_info", "complete_cast",
}


class TestDistributions:
    def test_zipf_weights_normalized_and_decreasing(self):
        w = zipf_weights(10, 1.2)
        assert w.sum() == pytest.approx(1.0)
        assert all(w[i] >= w[i + 1] for i in range(9))

    def test_zipf_weights_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_sample_zipf_range(self):
        rng = np.random.default_rng(0)
        s = sample_zipf(rng, 5, 1000, a=1.1)
        assert s.min() >= 0 and s.max() < 5
        counts = np.bincount(s, minlength=5)
        assert counts[0] > counts[4], "rank skew"

    def test_correlated_choice_strength(self):
        rng = np.random.default_rng(0)
        preferred = np.zeros(5000, dtype=np.int64)
        strong = correlated_choice(rng, preferred, 20, correlation=0.9)
        weak = correlated_choice(rng, preferred, 20, correlation=0.1)
        assert (strong == 0).mean() > (weak == 0).mean()

    def test_correlated_choice_validates(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            correlated_choice(rng, np.zeros(3, dtype=np.int64), 5, 1.5)

    def test_heavy_tail_counts_capped(self):
        rng = np.random.default_rng(0)
        pop = pareto_popularity(rng, 1000)
        counts = heavy_tail_counts(rng, pop, mean=3.0, cap=10)
        assert counts.max() <= 10
        assert counts.min() >= 0
        assert 1.0 < counts.mean() < 6.0


class TestImdb:
    def test_all_21_tables(self, imdb_tiny):
        assert set(imdb_tiny.tables) == IMDB_TABLES
        assert len(IMDB_TABLES) == 21

    def test_deterministic(self):
        a = generate_imdb("tiny", seed=11, analyze=False)
        b = generate_imdb("tiny", seed=11, analyze=False)
        for name in a.tables:
            ta, tb = a.table(name), b.table(name)
            assert ta.n_rows == tb.n_rows
            for col in ta.columns:
                assert np.array_equal(
                    ta.column(col).values, tb.column(col).values
                ), f"{name}.{col}"

    def test_seeds_differ(self):
        a = generate_imdb("tiny", seed=1, analyze=False)
        b = generate_imdb("tiny", seed=2, analyze=False)
        assert not np.array_equal(
            a.table("cast_info").column("person_id").values,
            b.table("cast_info").column("person_id").values,
        )

    def test_fk_integrity(self, imdb_tiny):
        for fk in imdb_tiny.foreign_keys:
            child = imdb_tiny.table(fk.table).column(fk.column)
            parent = imdb_tiny.table(fk.ref_table).column(fk.ref_column)
            values = child.values[child.values != NULL_INT]
            parent_keys = set(parent.values.tolist())
            assert set(values.tolist()) <= parent_keys, (
                f"dangling {fk.table}.{fk.column}"
            )

    def test_pk_uniqueness(self, imdb_tiny):
        for table in imdb_tiny.tables.values():
            if table.primary_key:
                vals = table.column(table.primary_key).values
                assert len(np.unique(vals)) == len(vals), table.name

    def test_statistics_present(self, imdb_tiny):
        assert set(imdb_tiny.statistics) == IMDB_TABLES

    def test_info_type_has_113_rows(self, imdb_tiny):
        assert imdb_tiny.table("info_type").n_rows == 113

    def test_scale_ordering(self):
        tiny = generate_imdb("tiny", analyze=False)
        small = generate_imdb("small", analyze=False)
        assert small.total_rows > tiny.total_rows

    def test_join_crossing_correlation_present(self):
        """Company country should track the movie's latent country far
        beyond independence: measure P(company is [us] | title has a
        USA 'countries' info row) vs the base rate."""
        db = generate_imdb("small", seed=42, correlation=0.8, analyze=False)
        mi = db.table("movie_info")
        usa_code = mi.column("info").code_for("USA")
        countries_rows = mi.column("info_type_id").values == 4
        usa_movies = set(
            mi.column("movie_id").values[
                countries_rows & (mi.column("info").values == usa_code)
            ].tolist()
        )
        mc = db.table("movie_companies")
        cn = db.table("company_name")
        us_cc = cn.column("country_code").code_for("[us]")
        company_is_us = cn.column("country_code").values == us_cc
        mc_company_us = company_is_us[mc.column("company_id").values - 1]
        in_usa_movie = np.fromiter(
            (m in usa_movies for m in mc.column("movie_id").values),
            dtype=bool,
            count=mc.n_rows,
        )
        p_given = mc_company_us[in_usa_movie].mean()
        p_base = mc_company_us.mean()
        assert p_given > p_base * 1.3, (p_given, p_base)

    def test_correlation_knob_zero_weakens(self):
        corr = generate_imdb("tiny", seed=1, correlation=0.8, analyze=False)
        indep = generate_imdb("tiny", seed=1, correlation=0.0, analyze=False)
        # the knob must change the data deterministically
        assert not np.array_equal(
            corr.table("movie_companies").column("company_id").values,
            indep.table("movie_companies").column("company_id").values,
        )

    def test_ratings_are_fixed_format(self, imdb_tiny):
        mii = imdb_tiny.table("movie_info_idx")
        rating_rows = mii.column("info_type_id").values == 1
        infos = mii.column("info").decoded()[rating_rows]
        assert all(len(s) == 3 and s[1] == "." for s in infos)


class TestTpch:
    def test_tables(self, tpch_tiny):
        assert set(tpch_tiny.tables) == {
            "region", "nation", "supplier", "customer", "orders",
            "lineitem", "part", "partsupp",
        }

    def test_fk_integrity(self, tpch_tiny):
        for fk in tpch_tiny.foreign_keys:
            child = tpch_tiny.table(fk.table).column(fk.column).values
            parent = set(
                tpch_tiny.table(fk.ref_table).column(fk.ref_column).values.tolist()
            )
            assert set(child.tolist()) <= parent

    def test_uniform_nation_assignment(self, tpch_tiny):
        nation = tpch_tiny.table("nation")
        region_counts = np.bincount(nation.column("n_regionkey").values)
        assert region_counts.tolist() == [5, 5, 5, 5, 5]

    def test_deterministic(self):
        a = generate_tpch("tiny", seed=3, analyze=False)
        b = generate_tpch("tiny", seed=3, analyze=False)
        assert np.array_equal(
            a.table("lineitem").column("l_partkey").values,
            b.table("lineitem").column("l_partkey").values,
        )
