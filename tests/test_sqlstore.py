"""Differential harness: the JSON and SQLite store backends must agree.

The acceptance bar of the storage layer:

* backend resolution is explicit arg > ``$REPRO_STORE`` > ``json``,
  unknown names are rejected, and :func:`set_store_backend` exports the
  choice so pool and queue workers inherit it;
* both backends hold **bit-identical** rows (``repr``-level, so lost
  ulps and ``-0.0`` flips count as failures), identical truth payloads
  (including subset bitsets past 2**63 and unbounded exact counts), and
  serve identical manifest answers;
* every one of the 16 registered fig/table artifacts renders
  byte-identical text from either backend, and a warm SQLite store
  replays each of them with zero pricing of either kind and zero
  database generation;
* a two-worker queue drain through the SQLite backend leaves a store
  whose rows match a sequential JSON sweep bit-for-bit;
* ``repro store migrate`` converts a JSON cache in place — verified
  row-for-row, idempotent — after which a SQLite replay prices nothing.
"""

import json
import sqlite3
import threading

import pytest

from repro.experiments import frame as frame_mod
from repro.pipeline import (
    SWEEP_KIND,
    DeepSpec,
    ResultStore,
    SweepSpec,
    TruthStore,
    WorkQueue,
    run_deep_sweep,
    run_sweep,
    run_worker,
    subexpr_deep_config,
)
from repro.pipeline import instrument
from repro.pipeline.grid import TRUE_SOURCE
from repro.pipeline.sqlstore import (
    STORE_BACKENDS,
    STORE_ENV,
    MigrationError,
    SqlStore,
    migrate_directory,
    migrate_root,
    resolve_store_backend,
    set_store_backend,
    sqlite_path,
)

QUERIES = ("1a", "4a")
BASE = SweepSpec(scale="tiny", seed=42, query_names=QUERIES)
SPEC = SweepSpec(
    scale="tiny",
    seed=42,
    query_names=QUERIES,
    estimators=("PostgreSQL", "HyPer"),
)
DEEP = DeepSpec(
    scale="tiny",
    seed=42,
    query_names=QUERIES,
    estimators=("PostgreSQL", TRUE_SOURCE),
    configs=(subexpr_deep_config(4),),
)


def _sweep_key(row):
    return (row.query, row.estimator, row.config)


def _deep_key(row):
    return (row.kind, row.query, row.estimator, row.config, row.subset)


# --------------------------------------------------------------------- #
# backend resolution
# --------------------------------------------------------------------- #


class TestBackendResolution:
    def test_default_is_json(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert resolve_store_backend() == "json"
        assert resolve_store_backend(None) == "json"

    def test_environment_sets_the_ambient_backend(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "sqlite")
        assert resolve_store_backend() == "sqlite"

    def test_explicit_argument_beats_the_environment(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "sqlite")
        assert resolve_store_backend("json") == "json"

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="parquet"):
            resolve_store_backend("parquet")
        monkeypatch.setenv(STORE_ENV, "bogus")
        with pytest.raises(ValueError, match="bogus"):
            resolve_store_backend()

    def test_set_store_backend_exports_to_workers(self, monkeypatch):
        import os

        # setenv (not delenv) so monkeypatch records a restore — the
        # set_store_backend call below mutates os.environ directly and
        # must not leak into the rest of the session
        monkeypatch.setenv(STORE_ENV, "json")
        assert set_store_backend("sqlite") == "sqlite"
        assert os.environ[STORE_ENV] == "sqlite"
        # a store built with no explicit choice now follows suit
        assert resolve_store_backend() == "sqlite"

    def test_both_stores_expose_their_backend(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert ResultStore(tmp_path, "tiny", 42).backend == "json"
        rs = ResultStore(tmp_path, "tiny", 42, backend="sqlite")
        ts = TruthStore(tmp_path, "tiny", 42, backend="sqlite")
        assert rs.backend == ts.backend == "sqlite"
        # one store.sqlite per db-key directory, shared by both halves
        assert rs._sql.path == ts._sql.path == sqlite_path(ts.directory)


# --------------------------------------------------------------------- #
# row-level parity
# --------------------------------------------------------------------- #


class TestRowParity:
    @pytest.fixture(scope="class")
    def twin(self, tmp_path_factory):
        """The same shallow + deep sweep priced through each backend."""
        roots = {}
        for backend in STORE_BACKENDS:
            root = tmp_path_factory.mktemp(f"twin-{backend}")
            run_sweep(
                SPEC, truth_root=root, result_root=root,
                store_backend=backend,
            )
            run_deep_sweep(
                DEEP, truth_root=root, result_root=root,
                store_backend=backend,
            )
            roots[backend] = root
        return roots

    def _stores(self, twin):
        return {
            backend: ResultStore.for_spec(root, SPEC, backend=backend)
            for backend, root in twin.items()
        }

    def test_sweep_rows_bit_identical(self, twin):
        stores = self._stores(twin)
        reprs = {
            backend: [
                repr(r) for r in sorted(store.scan(), key=_sweep_key)
            ]
            for backend, store in stores.items()
        }
        assert reprs["json"] and reprs["json"] == reprs["sqlite"]

    def test_deep_rows_bit_identical(self, twin):
        stores = self._stores(twin)
        reprs = {
            backend: [
                repr(r) for r in sorted(store.scan_deep(), key=_deep_key)
            ]
            for backend, store in stores.items()
        }
        assert reprs["json"] and reprs["json"] == reprs["sqlite"]

    def test_manifest_answers_identical(self, twin):
        stores = self._stores(twin)
        js, sq = stores["json"], stores["sqlite"]
        assert js.known_queries() == sq.known_queries() == list(QUERIES)
        assert js.index.total_rows() == sq.index.total_rows() == 8
        assert js.index.total_deep_rows() == sq.index.total_deep_rows()
        for query in QUERIES:
            assert js.index.row_keys(query) == sq.index.row_keys(query)
            assert js.index.deep_keys(query) == sq.index.deep_keys(query)
            for key in js.index.row_keys(query):
                estimator, _, fingerprint = key.partition("|")
                assert sq.index.lookup(query, estimator, fingerprint)

    def test_sqlite_backend_writes_no_per_query_files(self, twin):
        store = ResultStore.for_spec(twin["sqlite"], SPEC, backend="sqlite")
        assert store._sql.path.exists()
        assert not list(store.directory.glob("*.json"))

    def test_warm_sqlite_replay_prices_and_generates_nothing(self, twin):
        before = instrument.snapshot()
        warm = run_sweep(
            SPEC, truth_root=twin["sqlite"], result_root=twin["sqlite"],
            store_backend="sqlite",
        )
        deep = run_deep_sweep(
            DEEP, truth_root=twin["sqlite"], result_root=twin["sqlite"],
            store_backend="sqlite",
        )
        delta = instrument.snapshot() - before
        assert warm.priced_cells == 0 and deep.priced_cells == 0
        assert delta.cells_priced == 0
        assert delta.deep_cells_priced == 0
        assert delta.db_generations == 0


# --------------------------------------------------------------------- #
# truth parity
# --------------------------------------------------------------------- #


class TestTruthParity:
    #: a subset bitset past SQLite's signed-integer range and an exact
    #: count no 64-bit column could hold — both must survive as TEXT
    BIG_SUBSET = 2**63 + 11
    BIG_COUNT = 10**30 + 7

    def _twin_stores(self, tmp_path):
        return {
            backend: TruthStore(
                tmp_path / backend, "tiny", 42, backend=backend
            )
            for backend in STORE_BACKENDS
        }

    def test_roundtrip_including_big_ints(self, tmp_path):
        counts = {1: 7, 3: 0, self.BIG_SUBSET: self.BIG_COUNT}
        unfiltered = {(3, "t"): 5, (self.BIG_SUBSET, "mc"): 12}
        loaded = {}
        for backend, store in self._twin_stores(tmp_path).items():
            store.save("1a", counts, unfiltered, max_size=4)
            loaded[backend] = store.load("1a")
        assert loaded["json"] == loaded["sqlite"]
        assert loaded["sqlite"].counts == counts
        assert loaded["sqlite"].unfiltered == unfiltered
        assert loaded["sqlite"].max_size == 4
        assert type(loaded["sqlite"].counts[self.BIG_SUBSET]) is int

    def test_merge_union_semantics_match(self, tmp_path):
        loaded = {}
        for backend, store in self._twin_stores(tmp_path).items():
            store.save("1a", {1: 10, 2: 20}, {(1, "t"): 1}, max_size=2)
            # overlapping key: the recomputation (new value) wins; the
            # wider coverage claim (None = full) is kept
            store.save("1a", {2: 25, 3: 30}, {(3, "mc"): 9}, max_size=None)
            store.save("1a", {4: 40}, None, max_size=3)
            loaded[backend] = store.load("1a")
        assert loaded["json"] == loaded["sqlite"]
        assert loaded["sqlite"].counts == {1: 10, 2: 25, 3: 30, 4: 40}
        assert loaded["sqlite"].unfiltered == {(1, "t"): 1, (3, "mc"): 9}
        assert loaded["sqlite"].max_size is None

    def test_second_merge_keeps_first_counts(self, tmp_path):
        """Regression: ``INSERT OR REPLACE`` on ``truth_queries`` fired
        ``ON DELETE CASCADE`` and silently wiped every previously merged
        count on each save — a true upsert must not."""
        store = TruthStore(tmp_path, "tiny", 42, backend="sqlite")
        store.save("1a", {1: 2}, max_size=1)
        store.save("1a", {2: 3}, max_size=2)
        assert store.load("1a").counts == {1: 2, 2: 3}

    def test_known_queries_match(self, tmp_path):
        names = {}
        for backend, store in self._twin_stores(tmp_path).items():
            store.save("4a", {1: 1})
            store.save("1a", {1: 1})
            names[backend] = store.known_queries()
        assert names["json"] == names["sqlite"] == ["1a", "4a"]


# --------------------------------------------------------------------- #
# artifact parity: all 16 registered reports, both backends
# --------------------------------------------------------------------- #


ARTIFACTS = frame_mod.available_reports()


class TestArtifactParity:
    @pytest.fixture(scope="class")
    def rendered(self, tmp_path_factory):
        """Every artifact rendered cold per backend, then warm-replayed
        under sqlite with instrument deltas captured."""
        import os

        texts, warm = {}, {}
        original = os.environ.get(STORE_ENV)
        try:
            for backend in STORE_BACKENDS:
                os.environ[STORE_ENV] = backend
                root = tmp_path_factory.mktemp(f"report-{backend}")
                for name in ARTIFACTS:
                    texts[backend, name] = frame_mod.run_report(
                        name, BASE, result_root=root, truth_root=root
                    ).text
                if backend != "sqlite":
                    continue
                for name in ARTIFACTS:
                    before = instrument.snapshot()
                    run = frame_mod.run_report(
                        name, BASE, result_root=root, truth_root=root
                    )
                    warm[name] = (run, instrument.snapshot() - before)
        finally:
            if original is None:
                os.environ.pop(STORE_ENV, None)
            else:
                os.environ[STORE_ENV] = original
        return texts, warm

    def test_registry_holds_all_sixteen_artifacts(self):
        assert len(ARTIFACTS) == 16

    @pytest.mark.parametrize("name", ARTIFACTS)
    def test_backends_render_identical_bytes(self, name, rendered):
        texts, _ = rendered
        assert texts["json", name] == texts["sqlite", name]

    @pytest.mark.parametrize("name", ARTIFACTS)
    def test_warm_sqlite_replay_prices_nothing(self, name, rendered):
        texts, warm = rendered
        run, delta = warm[name]
        assert run.text == texts["sqlite", name]
        assert run.priced_cells == 0
        assert delta.cells_priced == 0
        assert delta.deep_cells_priced == 0
        assert delta.db_generations == 0


# --------------------------------------------------------------------- #
# queue drain through the sqlite backend
# --------------------------------------------------------------------- #


class TestSqliteQueueDrain:
    def test_two_worker_drain_matches_sequential_json(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(STORE_ENV, raising=False)
        sequential = run_sweep(
            SPEC, truth_root=tmp_path, result_root=tmp_path / "seq",
            store_backend="json",
        )
        queue = WorkQueue(tmp_path / "q")
        stats_enq = queue.enqueue(
            SPEC, SWEEP_KIND, tmp_path / "par", truth_root=tmp_path,
            store_backend="sqlite",
        )
        assert stats_enq.enqueued_cells == 8
        # the enqueuer's backend choice rides in the spec file: workers
        # need neither the flag nor the environment variable
        stats = []

        def drain(worker_id):
            stats.append(run_worker(queue, worker_id=worker_id, poll=0.05))

        threads = [
            threading.Thread(target=drain, args=(w,)) for w in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert queue.drained() and queue.status()["done"] == 2
        assert sum(s.cells_priced for s in stats) == 8
        assert all(s.leases_lost == 0 for s in stats)
        par = ResultStore.for_spec(tmp_path / "par", SPEC, backend="sqlite")
        seq = ResultStore.for_spec(tmp_path / "seq", SPEC, backend="json")
        assert par._sql.path.exists()
        assert not list(par.directory.glob("*.json"))
        assert [
            repr(r) for r in sorted(par.scan(), key=_sweep_key)
        ] == [
            repr(r) for r in sorted(seq.scan(), key=_sweep_key)
        ]
        # ... and the drained store warm-replays: nothing priced again
        warm = run_sweep(
            SPEC, truth_root=tmp_path, result_root=tmp_path / "par",
            store_backend="sqlite",
        )
        assert warm.priced_cells == 0
        assert warm.rows == sequential.rows


# --------------------------------------------------------------------- #
# migration
# --------------------------------------------------------------------- #


class TestMigration:
    @pytest.fixture()
    def json_cache(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        run_sweep(
            SPEC, truth_root=tmp_path, result_root=tmp_path,
            store_backend="json",
        )
        run_deep_sweep(
            DEEP, truth_root=tmp_path, result_root=tmp_path,
            store_backend="json",
        )
        return tmp_path

    def test_migrate_then_sqlite_replay_prices_nothing(self, json_cache):
        stats = migrate_root(json_cache)
        assert len(stats) == 1
        entry = stats[0]
        assert entry.result_queries == 2 and entry.sweep_rows == 8
        assert entry.truth_queries == 2 and entry.truth_counts > 0
        assert entry.deep_rows > 0
        assert "verified" in entry.render()
        before = instrument.snapshot()
        warm = run_sweep(
            SPEC, truth_root=json_cache, result_root=json_cache,
            store_backend="sqlite",
        )
        deep = run_deep_sweep(
            DEEP, truth_root=json_cache, result_root=json_cache,
            store_backend="sqlite",
        )
        delta = instrument.snapshot() - before
        assert warm.priced_cells == 0 and deep.priced_cells == 0
        assert delta.cells_priced == 0
        assert delta.deep_cells_priced == 0
        assert delta.db_generations == 0

    def test_migration_is_idempotent(self, json_cache):
        first = migrate_root(json_cache)
        second = migrate_root(json_cache)
        assert first == second

    def test_report_bytes_survive_migration(self, json_cache, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "json")
        cold = frame_mod.run_report(
            "fig6", BASE, result_root=json_cache, truth_root=json_cache
        )
        migrate_root(json_cache)
        monkeypatch.setenv(STORE_ENV, "sqlite")
        warm = frame_mod.run_report(
            "fig6", BASE, result_root=json_cache, truth_root=json_cache
        )
        assert warm.text == cold.text
        assert warm.priced_cells == 0

    def test_verification_failure_raises_and_names_the_file(
        self, json_cache, monkeypatch
    ):
        db_dir = next(p for p in json_cache.iterdir() if p.is_dir())
        monkeypatch.setattr(
            SqlStore, "load_truth", lambda self, query: None
        )
        with pytest.raises(MigrationError, match="truth payload mismatch"):
            migrate_directory(db_dir)

    def test_cli_round_trip(self, json_cache, capsys):
        from repro.cli import main

        assert main(["store", "migrate", "--cache", str(json_cache)]) == 0
        out = capsys.readouterr().out
        assert "verified" in out and "8 sweep row(s)" in out

    def test_cli_empty_cache_is_a_notice_not_an_error(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        assert main(["store", "migrate", "--cache", str(tmp_path)]) == 0
        assert "no database directories" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# sqlite-file plumbing
# --------------------------------------------------------------------- #


class TestSqlStoreFile:
    def test_missing_file_reads_empty_without_creating_it(self, tmp_path):
        store = SqlStore(tmp_path / "store.sqlite")
        assert store.load_query_raw("1a") is None
        assert store.load_truth("1a") is None
        assert store.manifest() == {}
        assert store.truth_queries() == []
        assert not (tmp_path / "store.sqlite").exists()

    def test_incompatible_format_version_refused(self, tmp_path):
        path = tmp_path / "store.sqlite"
        SqlStore(path).merge_rows("1a", {"e|f": {"x": 1}})
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '99' WHERE key = 'format'")
        conn.commit()
        conn.close()
        from repro.pipeline.sqlstore import SqlStoreError

        with pytest.raises(SqlStoreError, match="format version"):
            SqlStore(path).load_query_raw("1a")

    def test_wal_mode_and_foreign_keys_active(self, tmp_path):
        store = SqlStore(tmp_path / "store.sqlite")
        store.merge_truth("1a", {1: 2}, {}, 1)
        conn = store._connect()
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert conn.execute("PRAGMA foreign_keys").fetchone()[0] == 1

    def test_payloads_match_json_backend_files_exactly(self, tmp_path):
        """The sqlite payload column holds the very dict the JSON file
        keeps under the same key — one parser serves both backends."""
        for backend in STORE_BACKENDS:
            run_sweep(
                SPEC, truth_root=tmp_path / backend,
                result_root=tmp_path / backend, store_backend=backend,
            )
        js = ResultStore.for_spec(tmp_path / "json", SPEC, backend="json")
        sq = ResultStore.for_spec(
            tmp_path / "sqlite", SPEC, backend="sqlite"
        )
        for query in QUERIES:
            file_raw = json.loads(js.path(query).read_text())
            sql_raw = sq._sql.load_query_raw(query)
            assert sql_raw["version"] == file_raw["version"]
            assert sql_raw["rows"] == file_raw["rows"]
            assert sql_raw["deep"] == file_raw["deep"]


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-v"])
