"""Experiment harness: suite construction, caching, lookups."""

import pytest

from repro.experiments import ExperimentSuite
from repro.experiments.harness import ESTIMATOR_ORDER
from repro.physical import IndexConfig


class TestSuite:
    def test_default_loads_all_113(self):
        suite = ExperimentSuite(scale="tiny")
        assert len(suite.queries) == 113

    def test_subset_selection(self, suite_tiny):
        assert [q.name for q in suite_tiny.queries][:2] == ["1a", "2a"]

    def test_estimator_lineup(self, suite_tiny):
        assert list(suite_tiny.estimators) == ESTIMATOR_ORDER

    def test_context_cached(self, suite_tiny):
        q = suite_tiny.queries[0]
        assert suite_tiny.context(q) is suite_tiny.context(q)

    def test_card_cached(self, suite_tiny):
        q = suite_tiny.queries[0]
        assert suite_tiny.card("PostgreSQL", q) is suite_tiny.card(
            "PostgreSQL", q
        )
        assert suite_tiny.true_card(q) is suite_tiny.true_card(q)

    def test_design_cached(self, suite_tiny):
        assert suite_tiny.design(IndexConfig.PK) is suite_tiny.design(
            IndexConfig.PK
        )
        assert suite_tiny.design(IndexConfig.PK) is not suite_tiny.design(
            IndexConfig.PK_FK
        )

    def test_query_lookup(self, suite_tiny):
        assert suite_tiny.query("13d").name == "13d"
        with pytest.raises(KeyError):
            suite_tiny.query("99x")

    def test_external_db_accepted(self, toy_db):
        suite = ExperimentSuite(db=toy_db, query_names=[])
        assert suite.db is toy_db
        assert suite.queries == []

    def test_unknown_estimator_raises(self, suite_tiny):
        with pytest.raises(KeyError):
            suite_tiny.card("NoSuchDBMS", suite_tiny.queries[0])
