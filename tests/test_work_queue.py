"""Lease queue: claim races, expiry, reclaim, and drain parity.

The acceptance bar of the work-queue layer:

* enqueue is idempotent per grid delta (content-keyed unit files) and
  subtracts cells the result store already holds, exactly like a driver
  resume;
* two workers racing one unit see exactly one claim winner, a worker
  that dies mid-unit (or before its first heartbeat) is reclaimed once
  its lease expires, and a stolen lease loses the ``complete`` rename
  without corrupting the store;
* a queue drained by two concurrent workers leaves the result store
  **byte-identical** to a sequential ``repro sweep`` of the same spec,
  with zero duplicate pricings.
"""

import json
import threading
import time

import pytest

from repro.cli import main
from repro.pipeline import (
    DEEP_KIND,
    SWEEP_KIND,
    DeepSpec,
    ResultStore,
    SweepSpec,
    WorkQueue,
    run_deep_sweep,
    run_sweep,
    run_worker,
    subexpr_deep_config,
)
from repro.pipeline.grid import TRUE_SOURCE

SPEC = SweepSpec(
    scale="tiny",
    seed=42,
    query_names=("1a", "4a"),
    estimators=("PostgreSQL", "HyPer"),
)


class TestEnqueue:
    def test_enqueue_then_reenqueue_is_idempotent(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        stats = queue.enqueue(SPEC, SWEEP_KIND, tmp_path / "store")
        assert stats.enqueued_units == 2 and stats.enqueued_cells == 8
        assert queue.status()["pending"] == 2
        again = queue.enqueue(SPEC, SWEEP_KIND, tmp_path / "store")
        assert again.enqueued_units == 0
        assert again.already_queued_units == 2
        assert queue.status()["pending"] == 2

    def test_warm_store_enqueues_nothing(self, tmp_path):
        run_sweep(SPEC, truth_root=tmp_path, result_root=tmp_path / "store")
        queue = WorkQueue(tmp_path / "q")
        stats = queue.enqueue(SPEC, SWEEP_KIND, tmp_path / "store")
        assert stats.enqueued_units == 0 and stats.cached_cells == 8
        assert queue.drained()

    def test_partial_store_enqueues_exactly_the_delta(self, tmp_path):
        narrow = SweepSpec(
            scale="tiny",
            seed=42,
            query_names=("4a",),
            estimators=("PostgreSQL", "HyPer"),
        )
        run_sweep(narrow, truth_root=tmp_path, result_root=tmp_path / "s")
        queue = WorkQueue(tmp_path / "q")
        stats = queue.enqueue(SPEC, SWEEP_KIND, tmp_path / "s")
        assert stats.enqueued_units == 1 and stats.enqueued_cells == 4
        assert stats.cached_cells == 4
        lease = queue.claim("w")
        assert lease.payload["query"] == "1a"

    def test_claim_order_is_largest_first(self, tmp_path):
        spec = SweepSpec(
            scale="tiny",
            seed=42,
            query_names=("1a", "13a", "6a"),
            estimators=("PostgreSQL",),
        )
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(spec, SWEEP_KIND, tmp_path / "store")
        order = [queue.claim("w").payload["query"] for _ in range(3)]
        assert order == ["13a", "1a", "6a"]

    def test_version_mismatch_rejected(self, tmp_path):
        WorkQueue(tmp_path / "q")
        config = tmp_path / "q" / "queue.json"
        config.write_text(json.dumps({"version": 99, "lease_ttl": 1.0}))
        with pytest.raises(ValueError, match="format version"):
            WorkQueue(tmp_path / "q")


class TestLeaseProtocol:
    def _queued(self, tmp_path, lease_ttl=60.0, clock_skew=0.0):
        # skew tolerance is zeroed by default: these tests manufacture
        # sub-second expiries and must not wait out the real-world grace
        queue = WorkQueue(
            tmp_path / "q", lease_ttl=lease_ttl, clock_skew=clock_skew
        )
        queue.enqueue(SPEC, SWEEP_KIND, tmp_path / "store")
        return queue

    def test_two_workers_racing_one_unit_one_winner(self, tmp_path):
        queue = self._queued(tmp_path)
        barrier = threading.Barrier(2)
        leases = []

        def contend(worker_id):
            barrier.wait()
            leases.append(queue.claim(worker_id))

        threads = [
            threading.Thread(target=contend, args=(w,)) for w in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # both claims succeed but they win *different* units
        assert sorted(lease.payload["query"] for lease in leases) == [
            "1a", "4a",
        ]
        assert queue.status()["pending"] == 0
        assert queue.claim("c") is None

    def test_live_lease_is_not_reclaimed(self, tmp_path):
        queue = self._queued(tmp_path)
        lease = queue.claim("a")
        assert queue.reclaim_expired() == 0
        assert queue.heartbeat(lease)
        assert queue.status()["leased"] == 1

    def test_expired_lease_is_stolen_and_completion_loses(self, tmp_path):
        queue = self._queued(tmp_path, lease_ttl=0.05)
        first = queue.claim("a")
        queue.claim("a")  # drain the second unit so only one is at stake
        time.sleep(0.1)  # the ttl passes with no heartbeat
        stolen = queue.claim("b")
        assert stolen.unit_id == first.unit_id
        # the original holder's completion loses; the thief's wins
        assert queue.complete(first) is False
        assert queue.complete(stolen) is True
        assert queue.status()["done"] == 1

    def test_crash_before_first_heartbeat_is_reclaimable(self, tmp_path):
        queue = self._queued(tmp_path, lease_ttl=30.0)
        lease = queue.claim("a")
        # a claimer that died between the rename and its first stamp
        # leaves no heartbeat at all — that must read as expired
        queue._lease_path(lease.unit_id).unlink()
        assert queue.reclaim_expired() == 1
        assert queue.status() == {
            "specs": 1, "pending": 2, "leased": 0, "expired": 0, "done": 0,
        }

    def test_release_returns_unit_to_pending(self, tmp_path):
        queue = self._queued(tmp_path)
        lease = queue.claim("a")
        assert queue.release(lease) is True
        assert queue.status()["pending"] == 2
        assert queue.claim("b").unit_id == lease.unit_id

    def test_ttl_recorded_in_queue_wins_over_local_default(self, tmp_path):
        WorkQueue(tmp_path / "q", lease_ttl=7.0)
        assert WorkQueue(tmp_path / "q", lease_ttl=99.0).lease_ttl == 7.0

    def _stamp(self, queue, lease, stamp):
        """Overwrite a lease's heartbeat stamp (simulating a claimer
        whose wall clock disagrees with ours)."""
        queue._lease_path(lease.unit_id).write_text(
            json.dumps({"worker": lease.worker_id, "stamp": stamp})
        )

    def test_future_stamp_beyond_skew_is_reclaimed(self, tmp_path):
        # a claimer on a fast clock stamps an hour into our future; a
        # naive `now - stamp <= ttl` check sees a negative age and calls
        # it permanently fresh, so the unit would never be reclaimed
        # after that claimer dies
        queue = self._queued(tmp_path, lease_ttl=60.0, clock_skew=5.0)
        lease = queue.claim("fast-clock")
        self._stamp(queue, lease, time.time() + 3600.0)
        assert queue.status()["expired"] == 1
        assert queue.reclaim_expired() == 1
        assert queue.status()["leased"] == 0

    def test_future_stamp_within_skew_is_live(self, tmp_path):
        queue = self._queued(tmp_path, lease_ttl=60.0, clock_skew=5.0)
        lease = queue.claim("slightly-fast")
        self._stamp(queue, lease, time.time() + 2.0)
        assert queue.status()["expired"] == 0
        assert queue.reclaim_expired() == 0

    def test_stale_stamp_within_skew_grace_is_not_stolen(self, tmp_path):
        # a live worker on a clock `skew` seconds slow writes stamps
        # that look (ttl, ttl+skew] old here; stealing its lease would
        # double-price the unit, so the grace must hold it
        queue = self._queued(tmp_path, lease_ttl=60.0, clock_skew=5.0)
        lease = queue.claim("slow-clock")
        self._stamp(queue, lease, time.time() - 63.0)
        assert queue.status()["expired"] == 0
        assert queue.reclaim_expired() == 0
        # ...but past ttl + skew the lease really is dead
        self._stamp(queue, lease, time.time() - 66.0)
        assert queue.status()["expired"] == 1
        assert queue.reclaim_expired() == 1

    def test_skew_recorded_in_queue_wins_over_local_default(self, tmp_path):
        WorkQueue(tmp_path / "q", clock_skew=9.0)
        assert WorkQueue(tmp_path / "q", clock_skew=1.0).clock_skew == 9.0

    def test_queue_from_before_skew_field_gets_default(self, tmp_path):
        from repro.pipeline.queue import DEFAULT_CLOCK_SKEW

        WorkQueue(tmp_path / "q", lease_ttl=7.0)
        config = tmp_path / "q" / "queue.json"
        payload = json.loads(config.read_text())
        del payload["clock_skew"]
        config.write_text(json.dumps(payload))
        assert WorkQueue(tmp_path / "q").clock_skew == DEFAULT_CLOCK_SKEW


class TestDrainParity:
    @pytest.fixture(autouse=True)
    def _json_backend(self, monkeypatch):
        """Byte-compares per-query store *files* — JSON storage
        mechanics; the sqlite drain is covered by test_sqlstore.py."""
        monkeypatch.setenv("REPRO_STORE", "json")

    def test_two_workers_drain_bit_identically_to_sequential(self, tmp_path):
        sequential = run_sweep(
            SPEC, truth_root=tmp_path, result_root=tmp_path / "seq"
        )
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(
            SPEC, SWEEP_KIND, tmp_path / "par", truth_root=tmp_path
        )
        stats = []

        def drain(worker_id):
            stats.append(run_worker(queue, worker_id=worker_id, poll=0.05))

        threads = [
            threading.Thread(target=drain, args=(w,)) for w in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert queue.drained() and queue.status()["done"] == 2
        # zero duplicate pricings across the fleet
        assert sum(s.cells_priced for s in stats) == 8
        assert sum(s.units_done for s in stats) == 2
        assert all(s.leases_lost == 0 for s in stats)
        seq_store = ResultStore.for_spec(tmp_path / "seq", SPEC)
        par_store = ResultStore.for_spec(tmp_path / "par", SPEC)
        for query in ("1a", "4a"):
            assert (
                par_store.path(query).read_bytes()
                == seq_store.path(query).read_bytes()
            )
            assert par_store.load(query) == seq_store.load(query)
        drained_rows = run_sweep(
            SPEC, truth_root=tmp_path, result_root=tmp_path / "par"
        )
        assert drained_rows.priced_cells == 0
        assert drained_rows.rows == sequential.rows

    def test_deep_kind_drains_through_the_same_queue(self, tmp_path):
        spec = DeepSpec(
            scale="tiny",
            seed=42,
            query_names=("1a",),
            estimators=("PostgreSQL", TRUE_SOURCE),
            configs=(subexpr_deep_config(4),),
        )
        sequential = run_deep_sweep(
            spec, truth_root=tmp_path, result_root=tmp_path / "seq"
        )
        queue = WorkQueue(tmp_path / "q")
        enq = queue.enqueue(
            spec, DEEP_KIND, tmp_path / "par", truth_root=tmp_path
        )
        assert enq.enqueued_cells == 2
        stats = run_worker(queue, worker_id="w")
        assert stats.cells_priced == 2 and queue.drained()
        seq_store = ResultStore.for_spec(tmp_path / "seq", spec)
        par_store = ResultStore.for_spec(tmp_path / "par", spec)
        assert (
            par_store.path("1a").read_bytes()
            == seq_store.path("1a").read_bytes()
        )
        replayed = run_deep_sweep(
            spec, truth_root=tmp_path, result_root=tmp_path / "par"
        )
        assert replayed.priced_cells == 0
        assert replayed.rows == sequential.rows

    def test_max_units_stops_early(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(
            SPEC, SWEEP_KIND, tmp_path / "store", truth_root=tmp_path
        )
        stats = run_worker(queue, worker_id="w", max_units=1)
        assert stats.units_done == 1
        assert queue.status()["pending"] == 1


class TestWorkCli:
    def test_enqueue_worker_status_round_trip(self, tmp_path, capsys):
        argv = [
            "work", "enqueue",
            "--scale", "tiny", "--queries", "1a",
            "--estimators", "PostgreSQL", "--indexes", "PK",
            "--queue", str(tmp_path / "q"),
            "--result-cache", str(tmp_path / "store"),
        ]
        assert main(argv) == 0
        assert "enqueued 1 unit(s) / 1 cell(s)" in capsys.readouterr().out
        assert main(["work", "status", "--queue", str(tmp_path / "q")]) == 0
        assert "pending  1" in capsys.readouterr().out
        assert main(["work", "worker", "--queue", str(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "1 unit(s), 1 cell(s) priced" in out
        assert main(["work", "status", "--queue", str(tmp_path / "q")]) == 0
        assert "queue is drained" in capsys.readouterr().out

    def test_enqueue_requires_result_cache(self, tmp_path, capsys):
        argv = [
            "work", "enqueue",
            "--scale", "tiny", "--queries", "1a",
            "--queue", str(tmp_path / "q"),
        ]
        assert main(argv) == 2
        assert "needs --result-cache" in capsys.readouterr().err
