"""Physical design: index sets per configuration, access-path gating."""

import pytest

from repro.physical import IndexConfig, PhysicalDesign
from repro.query.query import JoinEdge
from repro.workloads import job_query


class TestIndexSets:
    def test_none_has_no_indexes(self, imdb_tiny):
        design = PhysicalDesign(imdb_tiny, IndexConfig.NONE)
        assert not design.has_index("title", "id")
        assert not design.has_index("cast_info", "movie_id")

    def test_pk_only(self, imdb_tiny):
        design = PhysicalDesign(imdb_tiny, IndexConfig.PK)
        assert design.has_index("title", "id")
        assert design.has_index("cast_info", "id")
        assert not design.has_index("cast_info", "movie_id")

    def test_pk_fk_adds_fk_columns(self, imdb_tiny):
        design = PhysicalDesign(imdb_tiny, IndexConfig.PK_FK)
        assert design.has_index("title", "id")
        assert design.has_index("cast_info", "movie_id")
        assert design.has_index("movie_companies", "company_id")
        assert not design.has_index("title", "production_year")

    def test_index_lazily_built_and_cached(self, imdb_tiny):
        design = PhysicalDesign(imdb_tiny, IndexConfig.PK)
        idx1 = design.index("title", "id")
        idx2 = design.index("title", "id")
        assert idx1 is idx2
        assert len(idx1.lookup(1)) == 1

    def test_missing_index_raises(self, imdb_tiny):
        design = PhysicalDesign(imdb_tiny, IndexConfig.PK)
        with pytest.raises(KeyError):
            design.index("cast_info", "movie_id")


class TestUsableIndexEdge:
    def test_pk_side_usable_in_pk_config(self, imdb_tiny):
        q = job_query("1a")
        design = PhysicalDesign(imdb_tiny, IndexConfig.PK)
        # mc.movie_id = t.id: inner 't' has a PK index on id
        edges = [e for e in q.joins if "t" in e.aliases()]
        edge = design.usable_index_edge(q, edges, "t")
        assert edge is not None
        _, col = edge.side("t")
        assert col == "id"

    def test_fk_side_needs_fk_config(self, imdb_tiny):
        q = job_query("1a")
        edges = [e for e in q.joins if "mc" in e.aliases()]
        pk_design = PhysicalDesign(imdb_tiny, IndexConfig.PK)
        fk_design = PhysicalDesign(imdb_tiny, IndexConfig.PK_FK)
        # inner 'mc' joins via movie_id / company_type_id (FK columns)
        assert pk_design.usable_index_edge(q, edges, "mc") is None
        assert fk_design.usable_index_edge(q, edges, "mc") is not None

    def test_none_config_blocks_everything(self, imdb_tiny):
        q = job_query("1a")
        design = PhysicalDesign(imdb_tiny, IndexConfig.NONE)
        for rel in q.relations:
            edges = [e for e in q.joins if rel.alias in e.aliases()]
            assert design.usable_index_edge(q, edges, rel.alias) is None

    def test_irrelevant_edges_ignored(self, imdb_tiny):
        q = job_query("1a")
        design = PhysicalDesign(imdb_tiny, IndexConfig.PK_FK)
        other = JoinEdge("mc", "movie_id", "miidx", "movie_id", "fk_fk")
        assert design.usable_index_edge(q, [other], "t") is None
