"""Property-style checks for every estimator in the registry.

Until now only the sweep exercised the estimator line-up end-to-end; a
broken estimator surfaced as a weird sweep row, not a failing unit test.
These tests pin down the per-estimator contract directly, for every
estimator :func:`~repro.pipeline.resources.standard_estimators` registers:

* every estimate — filtered or unfiltered, over every connected subset —
  is finite and at least one row (the paper's footnote-6 convention);
* base-relation estimates are *monotone under scale growth*: the same
  seeded generator at a larger scale never yields a smaller estimate for
  a base relation (join estimates may legitimately cross, as selectivity
  models sharpen with more data, so the monotonicity contract is scoped
  to base relations).
"""

from __future__ import annotations

import math

import pytest

from repro.datagen import generate_imdb
from repro.pipeline.resources import ESTIMATOR_ORDER, standard_estimators
from repro.query.join_graph import JoinGraph
from repro.query.subgraphs import connected_subsets
from repro.workloads import job_query

QUERY_NAMES = ("1a", "4a", "6a", "13d")


@pytest.fixture(scope="module")
def scale_dbs():
    return {
        scale: generate_imdb(scale, seed=42) for scale in ("tiny", "small")
    }


def test_registry_matches_estimator_order(scale_dbs):
    registry = standard_estimators(scale_dbs["tiny"])
    assert list(registry) == list(ESTIMATOR_ORDER)


@pytest.mark.parametrize("name", ESTIMATOR_ORDER)
def test_estimates_finite_and_positive_on_every_subset(scale_dbs, name):
    estimator = standard_estimators(scale_dbs["tiny"])[name]
    for query_name in QUERY_NAMES:
        query = job_query(query_name)
        card = estimator.bind(query)
        for subset in connected_subsets(JoinGraph(query)):
            value = card(subset)
            assert math.isfinite(value), (name, query_name, subset)
            assert value >= 1.0, (name, query_name, subset)


@pytest.mark.parametrize("name", ESTIMATOR_ORDER)
def test_unfiltered_base_estimates_valid(scale_dbs, name):
    """Unfiltered base estimates are finite and never below the filtered
    estimate's floor (dropping a selection cannot shrink a base table)."""
    estimator = standard_estimators(scale_dbs["tiny"])[name]
    for query_name in QUERY_NAMES:
        query = job_query(query_name)
        card = estimator.bind(query)
        for relation in query.relations:
            bit = query.alias_bit(relation.alias)
            unfiltered = card.unfiltered(bit, relation.alias)
            assert math.isfinite(unfiltered)
            assert unfiltered >= 1.0


@pytest.mark.parametrize("name", ESTIMATOR_ORDER)
def test_base_estimates_monotone_under_scale_growth(scale_dbs, name):
    small = standard_estimators(scale_dbs["small"])[name]
    tiny = standard_estimators(scale_dbs["tiny"])[name]
    for query_name in QUERY_NAMES:
        query = job_query(query_name)
        card_small = small.bind(query)
        card_tiny = tiny.bind(query)
        for relation in query.relations:
            bit = query.alias_bit(relation.alias)
            assert card_small(bit) >= card_tiny(bit), (name, query_name,
                                                       relation.alias)
