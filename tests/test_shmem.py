"""Shared-memory database shipping: roundtrip, lifecycle, zero redundancy.

The tentpole claim is *negative* — a pooled cold sweep generates each
database exactly once, workers attach instead of regenerating, and no
``/dev/shm`` segment outlives its sweep (even a killed one).  Negative
claims need instrumentation: these tests assert the master/worker
``db_generations`` counters through :class:`CellScheduler.pool_stats`,
walk ``/dev/shm`` before and after, and SIGKILL a publishing process to
prove the resource-tracker backstop unlinks what the publisher no longer
can.
"""

from __future__ import annotations

import glob
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.datagen import generate_imdb
from repro.pipeline import shmem
from repro.pipeline.grid import SweepSpec
from repro.pipeline.kinds import SWEEP_KIND
from repro.pipeline.scheduler import CellScheduler


def _shm_entries() -> set[str]:
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/*psm*"))


def _column_pairs(db):
    for table in db.tables.values():
        for col in table.columns.values():
            yield table.name, col


class TestPublishAttachRoundtrip:
    def test_attached_database_is_identical(self, imdb_tiny):
        published = shmem.publish_database(imdb_tiny)
        try:
            assert published.manifest.mode == "shm"
            attached = shmem.attach_database(published.manifest)
            assert attached.name == imdb_tiny.name
            assert set(attached.tables) == set(imdb_tiny.tables)
            for tname, col in _column_pairs(imdb_tiny):
                twin = attached.table(tname).column(col.name)
                assert twin.kind == col.kind
                assert np.array_equal(twin.values, col.values)
                if col.dictionary is None:
                    assert twin.dictionary is None
                else:
                    assert list(twin.dictionary) == list(col.dictionary)
            assert [
                (fk.table, fk.column, fk.ref_table, fk.ref_column)
                for fk in attached.foreign_keys
            ] == [
                (fk.table, fk.column, fk.ref_table, fk.ref_column)
                for fk in imdb_tiny.foreign_keys
            ]
            assert set(attached.statistics) == set(imdb_tiny.statistics)
        finally:
            published.close()

    def test_attached_views_are_zero_copy_and_read_only(self, imdb_tiny):
        published = shmem.publish_database(imdb_tiny)
        try:
            attached = shmem.attach_database(published.manifest)
            col = next(iter(attached.tables.values())).columns
            arr = next(iter(col.values())).values
            # a view into the segment, not a worker-side copy
            assert not arr.flags.owndata
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 123
        finally:
            published.close()

    def test_attached_database_estimates_identically(self, imdb_tiny):
        from repro.cardinality import PostgresEstimator
        from repro.workloads import job_query

        query = job_query("3a")
        reference = PostgresEstimator(imdb_tiny).bind(query)
        published = shmem.publish_database(imdb_tiny)
        try:
            attached = shmem.attach_database(published.manifest)
            twin = PostgresEstimator(attached).bind(query)
            for subset in (1, 2, 3, 5, 7, query.all_mask):
                assert twin(subset) == reference(subset)
        finally:
            published.close()


class TestLifecycle:
    def test_close_unlinks_segment_and_is_idempotent(self, imdb_tiny):
        published = shmem.publish_database(imdb_tiny)
        name = published.manifest.segment
        assert os.path.exists(f"/dev/shm/{name}")
        published.close()
        assert not os.path.exists(f"/dev/shm/{name}")
        published.close()  # idempotent

    def test_attach_does_not_adopt_unlink_responsibility(self, imdb_tiny):
        published = shmem.publish_database(imdb_tiny)
        try:
            name = published.manifest.segment
            attached = shmem.attach_database(published.manifest)
            del attached
            import gc

            gc.collect()
            # the attacher is gone; the publisher's segment must survive
            assert os.path.exists(f"/dev/shm/{name}")
        finally:
            published.close()

    def test_pickle_fallback_when_shm_unavailable(self, imdb_tiny, monkeypatch):
        from multiprocessing import shared_memory

        def refuse(*args, **kwargs):
            raise OSError("no shm for you")

        monkeypatch.setattr(shared_memory.SharedMemory, "__init__", refuse)
        published = shmem.publish_database(imdb_tiny)
        assert published.manifest.mode == "pickle"
        monkeypatch.undo()
        attached = shmem.attach_database(published.manifest)
        for tname, col in _column_pairs(imdb_tiny):
            twin = attached.table(tname).column(col.name)
            assert np.array_equal(twin.values, col.values)
        published.close()  # no segment: a no-op

    def test_resolve_ship_validates(self, monkeypatch):
        assert shmem.resolve_ship("shm") == "shm"
        assert shmem.resolve_ship("generate") == "generate"
        with pytest.raises(ValueError, match="unknown ship mode"):
            shmem.resolve_ship("carrier-pigeon")
        monkeypatch.delenv(shmem.ENV_VAR, raising=False)
        assert shmem.resolve_ship(None) == "shm"
        monkeypatch.setenv(shmem.ENV_VAR, "generate")
        assert shmem.resolve_ship(None) == "generate"


@pytest.mark.skipif(sys.platform != "linux", reason="/dev/shm is Linux")
class TestCrashSafety:
    def test_sigkill_mid_publish_leaks_no_segment(self, tmp_path):
        """SIGKILL the publisher: the tracker backstop unlinks for it."""
        script = textwrap.dedent(
            """
            import os, sys
            from repro.datagen import generate_imdb
            from repro.pipeline import shmem

            published = shmem.publish_database(generate_imdb("tiny", seed=42))
            print(published.manifest.segment, flush=True)
            os.kill(os.getpid(), 9)
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        segment = proc.stdout.readline().strip()
        proc.wait()
        assert proc.returncode == -signal.SIGKILL
        assert segment
        # the resource tracker is a separate process: give it a beat to
        # notice the publisher died and unlink the registered segment
        import time

        for _ in range(50):
            if not os.path.exists(f"/dev/shm/{segment}"):
                break
            time.sleep(0.1)
        assert not os.path.exists(f"/dev/shm/{segment}")


class TestPooledZeroRedundancy:
    def _run(self, spec, ship):
        scheduler = CellScheduler(
            SWEEP_KIND, spec, processes=2, ship=ship
        )
        units = SWEEP_KIND.decompose(spec)
        raw = scheduler.run(units)
        return scheduler, raw

    def test_shm_pool_workers_generate_nothing(self):
        from repro.pipeline.driver import clear_grid_caches
        from repro.pipeline.instrument import snapshot

        spec = SweepSpec(scale="tiny", seed=42, query_names=("3a", "6a"))
        # earlier tests may have warmed the grid-point cache; the "master
        # generates exactly once" claim is about a cold pooled sweep
        clear_grid_caches()
        before = snapshot()
        entries = _shm_entries()
        scheduler, raw = self._run(spec, ship="shm")
        after = snapshot()
        assert set(raw) == {"3a", "6a"}
        # master generated exactly once...
        assert (after - before).db_generations == 1
        # ...and every worker attached instead of regenerating
        assert scheduler.pool_stats is not None
        assert scheduler.pool_stats.workers >= 1
        assert scheduler.pool_stats.worker_db_generations == 0
        # the published segment did not outlive the sweep
        assert _shm_entries() - entries == set()

    def test_generate_pool_rows_match_shm_rows(self):
        from repro.pipeline.driver import clear_grid_caches

        spec = SweepSpec(scale="tiny", seed=42, query_names=("3a", "6a"))
        clear_grid_caches()
        shm_sched, shm_raw = self._run(spec, ship="shm")
        gen_sched, gen_raw = self._run(spec, ship="generate")
        # the legacy path regenerates per worker; the rows must not care
        assert gen_sched.pool_stats.worker_db_generations >= 1
        assert {q: rows for q, rows in shm_raw.items()} == gen_raw
        clear_grid_caches()
