"""Unit and property tests for bitset helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitset import (
    bit_indices,
    bits_of,
    iter_subsets,
    lowest_bit,
    popcount,
    subset_to_names,
)


def test_popcount_basic():
    assert popcount(0) == 0
    assert popcount(0b1011) == 3
    assert popcount(1 << 40) == 1


def test_lowest_bit():
    assert lowest_bit(0b0110) == 0b0010
    assert lowest_bit(0b1000) == 0b1000
    assert lowest_bit(1) == 1


def test_bit_indices_order():
    assert bit_indices(0b101001) == [0, 3, 5]
    assert bit_indices(0) == []


def test_bits_of_roundtrip():
    mask = 0b110101
    parts = list(bits_of(mask))
    assert all(popcount(p) == 1 for p in parts)
    combined = 0
    for p in parts:
        combined |= p
    assert combined == mask


def test_iter_subsets_small():
    subs = set(iter_subsets(0b101))
    assert subs == {0b100, 0b001}


def test_subset_to_names():
    assert subset_to_names(0b101, ["a", "b", "c"]) == ["a", "c"]


@given(st.integers(min_value=1, max_value=(1 << 12) - 1))
def test_iter_subsets_properties(mask):
    seen = set()
    for sub in iter_subsets(mask):
        assert sub != 0 and sub != mask
        assert sub & mask == sub, "every subset stays inside the mask"
        assert sub not in seen, "no duplicates"
        seen.add(sub)
    assert len(seen) == 2 ** popcount(mask) - 2


@given(st.integers(min_value=1, max_value=1 << 30))
def test_lowest_bit_and_indices_agree(mask):
    assert lowest_bit(mask) == 1 << bit_indices(mask)[0]
    assert popcount(mask) == len(bit_indices(mask))
