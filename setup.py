"""Setup shim.

The pyproject.toml carries all metadata; this file exists so that
``pip install -e .`` also works on environments without the ``wheel``
package (pip falls back to the legacy ``setup.py develop`` path with
``--no-use-pep517``).
"""

from setuptools import setup

setup()
